// Unit + property tests for the MV-index: flat layout, probUnder
// annotations, block structure, and both intersection algorithms
// (Section 4.3).

#include <gtest/gtest.h>

#include "mvindex/mv_index.h"
#include "obdd/order.h"
#include "prob/brute_force.h"
#include "query/eval.h"
#include "test_util.h"

namespace mvdb {
namespace {

using testing_util::Fig3Database;
using testing_util::MustParse;
using testing_util::RandomLineage;
using testing_util::RandomProbs;

std::vector<VarId> Identity(int n) {
  std::vector<VarId> order(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  return order;
}

TEST(FlatObddTest, SinkRoots) {
  BddManager mgr(Identity(2));
  FlatObdd t(mgr, BddManager::kTrue, {0.5, 0.5});
  EXPECT_EQ(t.root(), kFlatTrue);
  EXPECT_DOUBLE_EQ(t.prob_root(), 1.0);
  FlatObdd f(mgr, BddManager::kFalse, {0.5, 0.5});
  EXPECT_EQ(f.root(), kFlatFalse);
  EXPECT_DOUBLE_EQ(f.prob_root(), 0.0);
}

TEST(FlatObddTest, LevelSortedForwardEdges) {
  Rng rng(3);
  BddManager mgr(Identity(8));
  const Lineage lin = RandomLineage(&rng, 8, 6, 3);
  const auto probs = RandomProbs(&rng, 8);
  const NodeId f = mgr.FromLineageSynthesis(lin);
  FlatObdd flat(mgr, f, probs);
  for (size_t i = 0; i < flat.size(); ++i) {
    const FlatId id = static_cast<FlatId>(i);
    if (i + 1 < flat.size()) {
      EXPECT_LE(flat.level(id), flat.level(static_cast<FlatId>(i + 1)));
    }
    // Edges point strictly forward (children at larger indexes).
    if (flat.lo(id) >= 0) {
      EXPECT_GT(flat.lo(id), id);
    }
    if (flat.hi(id) >= 0) {
      EXPECT_GT(flat.hi(id), id);
    }
  }
}

TEST(FlatObddTest, ProbUnderMatchesManagerProb) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    BddManager mgr(Identity(8));
    const Lineage lin = RandomLineage(&rng, 8, 5, 3);
    const auto probs = RandomProbs(&rng, 8, trial % 2 == 1);
    const NodeId f = mgr.FromLineageSynthesis(lin);
    FlatObdd flat(mgr, f, probs);
    EXPECT_NEAR(flat.prob_root(), mgr.Prob(f, probs), 1e-12);
  }
}

TEST(FlatObddTest, ProbUnderMatchesManagerAtEveryNode) {
  // Per-node cross-check: probUnder of every flat node equals the manager's
  // Shannon-expansion probability of the corresponding sub-OBDD, evaluated
  // by re-importing the node's sub-DAG. Replaces the reachability-based
  // invariants from when the flat layout stored both annotations.
  Rng rng(5);
  BddManager mgr(Identity(6));
  const Lineage lin = RandomLineage(&rng, 6, 4, 2);
  const auto probs = RandomProbs(&rng, 6);
  const NodeId f = mgr.FromLineageSynthesis(lin);
  FlatObdd flat(mgr, f, probs);
  ASSERT_GE(flat.root(), 0);
  EXPECT_NEAR(flat.prob_root(), mgr.Prob(f, probs), 1e-12);
  // Sub-OBDDs: walk the flat array; each node's {level, lo, hi} triple is
  // re-created in the manager (hash-consing dedups), so Prob() on that node
  // is the reference for prob_under at the same position.
  std::vector<NodeId> ids(flat.size());
  for (FlatId u = static_cast<FlatId>(flat.size()); u-- > 0;) {
    auto node_of = [&](FlatId v) {
      if (v == kFlatFalse) return BddManager::kFalse;
      if (v == kFlatTrue) return BddManager::kTrue;
      return ids[static_cast<size_t>(v)];
    };
    ids[static_cast<size_t>(u)] =
        mgr.Mk(flat.level(u), node_of(flat.lo(u)), node_of(flat.hi(u)));
    EXPECT_NEAR(flat.prob_under(u),
                mgr.Prob(ids[static_cast<size_t>(u)], probs), 1e-12)
        << "node " << u;
  }
}

TEST(FlatObddTest, Width) {
  BddManager mgr(Identity(4));
  Lineage lin;
  lin.AddClause({0, 2});
  lin.AddClause({1, 3});
  const NodeId f = mgr.FromLineageSynthesis(lin);
  FlatObdd flat(mgr, f, {0.5, 0.5, 0.5, 0.5});
  EXPECT_GE(flat.Width(), 1u);
}

class MvIndexFixture : public ::testing::Test {
 protected:
  // A small database with two view-like constraint groups over disjoint
  // relations, so the index has multiple independent blocks.
  void Build(const char* w_text) {
    db_ = std::make_unique<Database>();
    ASSERT_TRUE(db_->CreateTable("R", {"a"}, true).ok());
    ASSERT_TRUE(db_->CreateTable("S", {"a", "b"}, true).ok());
    ASSERT_TRUE(db_->CreateTable("T", {"c"}, true).ok());
    Rng rng(17);
    // S.b values overlap T.c so that inversion-shaped constraints
    // (W :- S(u,v), T(v)) have derivations.
    for (int x = 1; x <= 3; ++x) {
      db_->InsertProbabilistic("R", {x}, 0.5 + rng.Uniform());
      db_->InsertProbabilistic("T", {20 + x}, 0.5 + rng.Uniform());
      for (int y = 1; y <= 2; ++y) {
        db_->InsertProbabilistic("S", {x, 20 + y}, 0.5 + rng.Uniform());
      }
    }
    w_ = MustParse(w_text, &db_->dict());
    mgr_ = std::make_unique<BddManager>(BuildDefaultOrder(*db_));
    probs_ = db_->VarProbs();
    auto index = MvIndex::Build(*db_, w_, mgr_.get(), probs_);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    index_ = std::move(index).value();
    w_lineage_ = *EvalBoolean(*db_, w_);
  }

  std::unique_ptr<Database> db_;
  Ucq w_;
  std::unique_ptr<BddManager> mgr_;
  std::vector<double> probs_;
  std::unique_ptr<MvIndex> index_;
  Lineage w_lineage_;
};

TEST_F(MvIndexFixture, ProbNotWMatchesBruteForce) {
  Build("W :- R(x), S(x,y). W :- T(z).");
  Lineage t;
  t.AddClause({});
  EXPECT_NEAR(index_->ProbNotW(),
              BruteForceProbAndNot(t, w_lineage_, probs_), 1e-9);
}

TEST_F(MvIndexFixture, BlocksAreSeparatorKeyed) {
  Build("W :- R(x), S(x,y). W :- T(z).");
  // R/S group decomposes on x (3 values); T group on z (3 values).
  EXPECT_GE(index_->blocks().size(), 4u);
}

TEST_F(MvIndexFixture, IntersectMatchesBruteForce) {
  Build("W :- R(x), S(x,y). W :- T(z).");
  Rng rng(23);
  const int nv = static_cast<int>(db_->num_vars());
  for (int trial = 0; trial < 40; ++trial) {
    const Lineage q = RandomLineage(&rng, nv, 3, 2);
    const NodeId qb = mgr_->FromLineageSynthesis(q);
    const double expected = BruteForceProbAndNot(q, w_lineage_, probs_);
    EXPECT_NEAR(index_->MVIntersect(qb), expected, 1e-9) << q.ToString();
    EXPECT_NEAR(index_->CCMVIntersect(qb), expected, 1e-9) << q.ToString();
  }
}

TEST_F(MvIndexFixture, IntersectTrivialQueries) {
  Build("W :- R(x), S(x,y).");
  EXPECT_DOUBLE_EQ(index_->MVIntersect(BddManager::kFalse), 0.0);
  EXPECT_NEAR(index_->MVIntersect(BddManager::kTrue), index_->ProbNotW(), 1e-12);
  EXPECT_DOUBLE_EQ(index_->CCMVIntersect(BddManager::kFalse), 0.0);
  EXPECT_NEAR(index_->CCMVIntersect(BddManager::kTrue), index_->ProbNotW(),
              1e-12);
}

TEST_F(MvIndexFixture, QueryTouchingOnlyLastBlockSkipsPrefix) {
  Build("W :- R(x), S(x,y). W :- T(z).");
  // A query over T only: fast-forward should skip the R/S blocks, and the
  // result must still be exact.
  Lineage q;
  const Table* t = db_->Find("T");
  q.AddClause({t->var(0)});
  const NodeId qb = mgr_->FromLineageSynthesis(q);
  const double expected = BruteForceProbAndNot(q, w_lineage_, probs_);
  EXPECT_NEAR(index_->MVIntersect(qb), expected, 1e-9);
  EXPECT_NEAR(index_->CCMVIntersect(qb), expected, 1e-9);
}

TEST_F(MvIndexFixture, NonInversionFreeWStillExact) {
  // W with an inversion: blocks merge, synthesis fallback — correctness
  // must be unaffected.
  Build("W :- R(x), S(x,y). W :- S(u,v), T(v).");
  SUCCEED();  // Build already cross-checks below
  Lineage tlin;
  tlin.AddClause({});
  EXPECT_NEAR(index_->ProbNotW(),
              BruteForceProbAndNot(tlin, w_lineage_, probs_), 1e-9);
  Rng rng(29);
  const int nv = static_cast<int>(db_->num_vars());
  for (int trial = 0; trial < 20; ++trial) {
    const Lineage q = RandomLineage(&rng, nv, 3, 2);
    const NodeId qb = mgr_->FromLineageSynthesis(q);
    const double expected = BruteForceProbAndNot(q, w_lineage_, probs_);
    EXPECT_NEAR(index_->MVIntersect(qb), expected, 1e-9);
    EXPECT_NEAR(index_->CCMVIntersect(qb), expected, 1e-9);
  }
}

TEST_F(MvIndexFixture, EmptyWIsIdentity) {
  db_ = std::make_unique<Database>();
  ASSERT_TRUE(db_->CreateTable("R", {"a"}, true).ok());
  db_->InsertProbabilistic("R", {1}, 1.0);
  Ucq w;  // no disjuncts: W = false, NOT W = true
  w.name = "W";
  mgr_ = std::make_unique<BddManager>(BuildDefaultOrder(*db_));
  probs_ = db_->VarProbs();
  auto index = MvIndex::Build(*db_, w, mgr_.get(), probs_);
  ASSERT_TRUE(index.ok());
  EXPECT_DOUBLE_EQ((*index)->ProbNotW(), 1.0);
  Lineage q;
  q.AddClause({0});
  const NodeId qb = mgr_->FromLineageSynthesis(q);
  EXPECT_NEAR((*index)->MVIntersect(qb), 0.5, 1e-12);
  EXPECT_NEAR((*index)->CCMVIntersect(qb), 0.5, 1e-12);
}

TEST_F(MvIndexFixture, NegativeProbabilities) {
  // NV-style variables with negative probabilities inside W.
  db_ = std::make_unique<Database>();
  ASSERT_TRUE(db_->CreateTable("R", {"a"}, true).ok());
  ASSERT_TRUE(db_->CreateTable("NV", {"a"}, true).ok());
  db_->InsertProbabilistic("R", {1}, 2.0);
  db_->InsertProbabilistic("R", {2}, 0.7);
  db_->InsertProbabilistic("NV", {1}, -0.6);   // p = -1.5 (w = 2.5)
  db_->InsertProbabilistic("NV", {2}, -0.96);  // p = -24 (w = 25)
  w_ = MustParse("W :- NV(x), R(x).", &db_->dict());
  mgr_ = std::make_unique<BddManager>(BuildDefaultOrder(*db_));
  probs_ = db_->VarProbs();
  auto index = MvIndex::Build(*db_, w_, mgr_.get(), probs_);
  ASSERT_TRUE(index.ok());
  index_ = std::move(index).value();
  w_lineage_ = *EvalBoolean(*db_, w_);
  Lineage t;
  t.AddClause({});
  EXPECT_NEAR(index_->ProbNotW(),
              BruteForceProbAndNot(t, w_lineage_, probs_), 1e-9);
  Lineage q;
  q.AddClause({0});
  const NodeId qb = mgr_->FromLineageSynthesis(q);
  EXPECT_NEAR(index_->MVIntersect(qb),
              BruteForceProbAndNot(q, w_lineage_, probs_), 1e-9);
  EXPECT_NEAR(index_->CCMVIntersect(qb),
              BruteForceProbAndNot(q, w_lineage_, probs_), 1e-9);
}

}  // namespace
}  // namespace mvdb
