// Tests for unifiability, homomorphism mapping, and CQ minimization — the
// analysis pieces the lifted evaluator's inclusion–exclusion depends on.

#include <gtest/gtest.h>

#include "query/analysis.h"
#include "query/parser.h"

namespace mvdb {
namespace {

Ucq Parse(const std::string& s) {
  Interner dict;
  auto q = ParseUcq(s, &dict);
  MVDB_CHECK(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

TEST(UnifiableTest, VariablePatternsUnify) {
  Ucq q = Parse("Q :- R(x,y), R(u,v).");
  EXPECT_TRUE(Unifiable(q.disjuncts[0].atoms[0], q.disjuncts[0].atoms[1]));
}

TEST(UnifiableTest, MatchingConstantsUnify) {
  Ucq q = Parse("Q :- R(x,5), R(u,5).");
  EXPECT_TRUE(Unifiable(q.disjuncts[0].atoms[0], q.disjuncts[0].atoms[1]));
}

TEST(UnifiableTest, ClashingConstantsDoNot) {
  Ucq q = Parse("Q :- R(x,5), R(u,6).");
  EXPECT_FALSE(Unifiable(q.disjuncts[0].atoms[0], q.disjuncts[0].atoms[1]));
}

TEST(UnifiableTest, DifferentRelationsDoNot) {
  Ucq q = Parse("Q :- R(x), S(x).");
  EXPECT_FALSE(Unifiable(q.disjuncts[0].atoms[0], q.disjuncts[0].atoms[1]));
}

TEST(UnifiableTest, VariableAgainstConstantUnifies) {
  Ucq q = Parse("Q :- R(x,5), R(u,w).");
  EXPECT_TRUE(Unifiable(q.disjuncts[0].atoms[0], q.disjuncts[0].atoms[1]));
}

TEST(MapsIntoTest, GeneralIntoSpecific) {
  Ucq gen = Parse("Q :- R(x).");
  Ucq spec = Parse("Q :- R(1), S(1).");
  EXPECT_TRUE(MapsInto(gen.disjuncts[0], spec.disjuncts[0]));
  EXPECT_FALSE(MapsInto(spec.disjuncts[0], gen.disjuncts[0]));
}

TEST(MapsIntoTest, JoinStructurePreserved) {
  // R(x),S(x,y) maps into R(1),S(1,2); it does NOT map into R(1),S(3,2)
  // because x must go to both 1 (via R) and 3 (via S).
  Ucq gen = Parse("Q :- R(x), S(x,y).");
  Ucq good = Parse("Q :- R(1), S(1,2).");
  Ucq bad = Parse("Q :- R(1), S(3,2).");
  EXPECT_TRUE(MapsInto(gen.disjuncts[0], good.disjuncts[0]));
  EXPECT_FALSE(MapsInto(gen.disjuncts[0], bad.disjuncts[0]));
}

TEST(MapsIntoTest, ComparisonsBlockConservatively) {
  Ucq gen = Parse("Q :- R(x), x > 5.");
  Ucq spec = Parse("Q :- R(7).");
  EXPECT_FALSE(MapsInto(gen.disjuncts[0], spec.disjuncts[0]));
}

TEST(MinimizeCqTest, RemovesSubsumedAtom) {
  // (R(x) ^ S(x)) ^ R(x'): R(x') is subsumed (x' exclusive, maps to x).
  Ucq q = Parse("Q :- R(x), S(x), R(y).");
  const ConjunctiveQuery min = MinimizeCq(q.disjuncts[0]);
  EXPECT_EQ(min.atoms.size(), 2u);
}

TEST(MinimizeCqTest, KeepsDistinctJoins) {
  // S(x,y1), S(x,y2) with y1 != y2: y1/y2 occur in comparisons, so neither
  // atom is removable.
  Ucq q = Parse("Q :- S(x,y1), S(x,y2), y1 != y2.");
  const ConjunctiveQuery min = MinimizeCq(q.disjuncts[0]);
  EXPECT_EQ(min.atoms.size(), 2u);
}

TEST(MinimizeCqTest, RemovesDuplicateAtomOnce) {
  Ucq q = Parse("Q :- R(x,y), R(x,y).");
  const ConjunctiveQuery min = MinimizeCq(q.disjuncts[0]);
  EXPECT_EQ(min.atoms.size(), 1u);
}

TEST(MinimizeCqTest, SharedVariablesBlockRemoval) {
  // R(x,y), R(x,z), T(z): y is exclusive to the first atom but z is shared
  // with T, so R(x,z) must stay; R(x,y) is subsumed by R(x,z) via y -> z.
  Ucq q = Parse("Q :- R(x,y), R(x,z), T(z).");
  const ConjunctiveQuery min = MinimizeCq(q.disjuncts[0]);
  EXPECT_EQ(min.atoms.size(), 2u);
}

TEST(MinimizeCqTest, ConstantPositionsMustMatch) {
  Ucq q = Parse("Q :- R(x,5), R(y,6).");
  const ConjunctiveQuery min = MinimizeCq(q.disjuncts[0]);
  EXPECT_EQ(min.atoms.size(), 2u);  // different constants: both stay
}

TEST(MinimizeCqTest, ChainOfSubsumptions) {
  // R(x,y) subsumed by R(1,y') subsumed by nothing; x,y exclusive.
  Ucq q = Parse("Q :- R(x,y), R(1,z), S(z).");
  const ConjunctiveQuery min = MinimizeCq(q.disjuncts[0]);
  EXPECT_EQ(min.atoms.size(), 2u);
}

TEST(MinimizeCqTest, PreservesComparisons) {
  Ucq q = Parse("Q :- R(x), R(y), x > 5.");
  const ConjunctiveQuery min = MinimizeCq(q.disjuncts[0]);
  // x occurs in a comparison: R(x) not removable; R(y) maps onto R(x).
  EXPECT_EQ(min.atoms.size(), 1u);
  EXPECT_EQ(min.comparisons.size(), 1u);
}

}  // namespace
}  // namespace mvdb
