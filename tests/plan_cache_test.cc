// Plan-cache battery: hit/miss accounting, LRU capacity eviction, the
// signature-collision corner from mvindex_template_test (equal constants
// collapse onto one slot, so a query with colliding constants gets its OWN
// shape, distinct from the non-colliding binding of the same syntax), and
// the central correctness property — cached execution is bit-identical to
// plan-from-scratch Eval on randomized UCQs, both at the PlanCache level
// and through QueryEngine::EnablePlanCache.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "query/analysis.h"
#include "query/eval.h"
#include "serve/plan_cache.h"
#include "test_util.h"

namespace mvdb {
namespace {

using testing_util::Fig3Database;
using testing_util::MustParse;
using testing_util::RandomMvdb;
using testing_util::RandomMvdbSpec;

/// Renders an AnswerMap for exact comparison: head tuples, lineage clauses,
/// count sets — everything evaluation produces.
std::string Render(const AnswerMap& answers) {
  std::string out;
  for (const auto& [head, info] : answers) {
    out += "[";
    for (const Value v : head) out += std::to_string(v) + ",";
    out += "] " + info.lineage.ToString();
    for (const Value v : info.count_values) out += " #" + std::to_string(v);
    out += "\n";
  }
  return out;
}

std::string EvalViaCache(PlanCache* cache, const Database& db, const Ucq& q,
                         bool* hit = nullptr) {
  const UcqSignature sig = ComputeUcqSignature(q);
  auto tmpl = cache->GetOrPlan(db, q, sig, EvalOptions{}, hit);
  MVDB_CHECK(tmpl.ok()) << tmpl.status().ToString();
  EvalScratch scratch;
  AnswerMap answers;
  MVDB_CHECK((*tmpl)->Execute(sig.slots, &scratch, &answers).ok());
  return Render(answers);
}

std::string EvalFromScratch(const Database& db, const Ucq& q) {
  AnswerMap answers;
  MVDB_CHECK(Eval(db, q, EvalOptions{}, &answers).ok());
  return Render(answers);
}

TEST(PlanCacheTest, HitMissAccountingAndTemplateReuse) {
  auto db = Fig3Database();
  PlanCache cache(8);

  const Ucq q1 = MustParse("Q(x) :- R(x), S(x,y).", &db->dict());
  bool hit = true;
  const UcqSignature sig1 = ComputeUcqSignature(q1);
  auto first = cache.GetOrPlan(*db, q1, sig1, EvalOptions{}, &hit);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(hit);

  auto second = cache.GetOrPlan(*db, q1, sig1, EvalOptions{}, &hit);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(first->get(), second->get());  // same compiled template

  // Same shape, different constant: one signature, so a hit.
  const Ucq q2 = MustParse("Q(x) :- R(x), S(x,11).", &db->dict());
  const Ucq q3 = MustParse("Q(x) :- R(x), S(x,13).", &db->dict());
  const UcqSignature sig2 = ComputeUcqSignature(q2);
  const UcqSignature sig3 = ComputeUcqSignature(q3);
  EXPECT_NE(sig1.key, sig2.key);
  EXPECT_EQ(sig2.key, sig3.key);
  auto t2 = cache.GetOrPlan(*db, q2, sig2, EvalOptions{}, &hit);
  ASSERT_TRUE(t2.ok());
  EXPECT_FALSE(hit);
  auto t3 = cache.GetOrPlan(*db, q3, sig3, EvalOptions{}, &hit);
  ASSERT_TRUE(t3.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(t2->get(), t3->get());

  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.plan_failures, 0u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);

  // The shared template still answers each binding correctly.
  EXPECT_EQ(EvalViaCache(&cache, *db, q2), EvalFromScratch(*db, q2));
  EXPECT_EQ(EvalViaCache(&cache, *db, q3), EvalFromScratch(*db, q3));
  EXPECT_NE(EvalViaCache(&cache, *db, q2), EvalViaCache(&cache, *db, q3));
}

TEST(PlanCacheTest, CapacityEvictionIsLru) {
  auto db = Fig3Database();
  PlanCache cache(2);
  const Ucq a = MustParse("Qa(x) :- R(x).", &db->dict());
  const Ucq b = MustParse("Qb(x) :- S(x,y).", &db->dict());
  const Ucq c = MustParse("Qc(x,y) :- R(x), S(x,y).", &db->dict());

  bool hit = false;
  auto lookup = [&](const Ucq& q) {
    auto t = cache.GetOrPlan(*db, q, ComputeUcqSignature(q), EvalOptions{}, &hit);
    MVDB_CHECK(t.ok());
  };
  lookup(a);  // miss: {a}
  lookup(b);  // miss: {b, a}
  lookup(a);  // hit:  {a, b}
  EXPECT_TRUE(hit);
  lookup(c);  // miss, evicts LRU = b: {c, a}
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().size, 2u);
  lookup(a);  // still cached
  EXPECT_TRUE(hit);
  lookup(b);  // evicted: must re-plan (and evict c)
  EXPECT_FALSE(hit);
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.evictions, 2u);
}

TEST(PlanCacheTest, SignatureCollisionCornerGetsItsOwnEntry) {
  // The mvindex_template_test corner, now on the online cache: in
  // "Q :- P(3,y), y > 3." the two constants are equal and collapse onto ONE
  // slot, so the query's shape differs from "Q :- P(2,y), y > 3." (two
  // slots) even though the syntax trees are isomorphic. The cache must keep
  // them apart, and both cached evaluations must match plan-from-scratch.
  auto db = std::make_unique<Database>();
  ASSERT_TRUE(db->CreateTable("P", {"x", "y"}, true).ok());
  Rng rng(41);
  for (int x = 1; x <= 6; ++x) {
    for (int y = 1; y <= 6; ++y) {
      if (rng.Chance(0.6)) db->InsertProbabilistic("P", {x, y}, 0.3 + rng.Uniform());
    }
  }
  const Ucq colliding = MustParse("Q :- P(3,y), y > 3.", &db->dict());
  const Ucq distinct = MustParse("Q :- P(2,y), y > 3.", &db->dict());
  const UcqSignature sig_c = ComputeUcqSignature(colliding);
  const UcqSignature sig_d = ComputeUcqSignature(distinct);
  ASSERT_NE(sig_c.key, sig_d.key);
  ASSERT_EQ(sig_c.slots.size(), 1u);
  ASSERT_EQ(sig_d.slots.size(), 2u);

  PlanCache cache(8);
  EXPECT_EQ(EvalViaCache(&cache, *db, colliding), EvalFromScratch(*db, colliding));
  EXPECT_EQ(EvalViaCache(&cache, *db, distinct), EvalFromScratch(*db, distinct));
  EXPECT_EQ(cache.stats().misses, 2u);  // two shapes, two entries
  EXPECT_EQ(cache.stats().size, 2u);

  // Re-binding through the colliding-shape template stays exact.
  const Ucq colliding2 = MustParse("Q :- P(5,y), y > 5.", &db->dict());
  ASSERT_EQ(ComputeUcqSignature(colliding2).key, sig_c.key);
  bool hit = false;
  EXPECT_EQ(EvalViaCache(&cache, *db, colliding2, &hit),
            EvalFromScratch(*db, colliding2));
  EXPECT_TRUE(hit);
}

TEST(PlanCacheTest, CachedEqualsFromScratchOnRandomizedUcqs) {
  // Randomized parity sweep: many query shapes and bindings over random
  // MVDB instances, every one evaluated through a small (eviction-prone)
  // cache and compared against plan-from-scratch, render-for-render.
  for (int inst = 0; inst < 6; ++inst) {
    Rng rng(9100 + static_cast<uint64_t>(inst));
    RandomMvdbSpec spec;
    spec.domain = 3 + static_cast<int>(rng.Below(4));
    auto mvdb = RandomMvdb(&rng, spec);
    Database& db = mvdb->db();
    PlanCache cache(3);
    std::vector<std::string> shapes = {
        "Q(x) :- R(x).",
        "Q(x,y) :- S(x,y).",
        "Q(x) :- R(x), S(x,y).",
        "Q(y) :- S(%d,y).",
        "Q(x) :- S(x,%d), R(x).",
        "Q :- R(%d).",
        "Q(x) :- S(x,y), y > %d.",
    };
    for (int round = 0; round < 3; ++round) {
      for (const std::string& shape : shapes) {
        // Two bindings of each shape back to back: the second lookup finds
        // the template the first one planned (LRU-resident), so the sweep
        // exercises both the hit and the miss/eviction paths.
        for (int binding = 0; binding < 2; ++binding) {
          char buf[128];
          std::snprintf(buf, sizeof(buf), shape.c_str(),
                        1 + static_cast<int>(rng.Below(
                                static_cast<uint64_t>(spec.domain))));
          const Ucq q = MustParse(buf, &db.dict());
          EXPECT_EQ(EvalViaCache(&cache, db, q), EvalFromScratch(db, q))
              << "inst=" << inst << " q=" << buf;
        }
      }
    }
    const PlanCacheStats stats = cache.stats();
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.evictions, 0u);  // capacity 3 < 7 shapes
  }
}

TEST(PlanCacheTest, EngineRoutedQueriesAreBitIdenticalWithCacheOnAndOff) {
  // QueryEngine::EnablePlanCache must not change a single output bit:
  // compile two copies of the same random instance, route one engine's
  // queries through the cache, and compare Query() probabilities bitwise.
  for (int inst = 0; inst < 4; ++inst) {
    auto make = [&]() {
      Rng rng(9700 + static_cast<uint64_t>(inst));
      RandomMvdbSpec spec;
      spec.domain = 4;
      return RandomMvdb(&rng, spec);
    };
    auto cached_mvdb = make();
    auto plain_mvdb = make();
    QueryEngine cached(cached_mvdb.get());
    QueryEngine plain(plain_mvdb.get());
    cached.EnablePlanCache(4);

    const std::vector<std::string> queries = {
        "Q(x) :- R(x), S(x,y).", "Q(x) :- R(x), S(x,y).",  // repeat: a hit
        "Q(y) :- S(2,y).",       "Q(y) :- S(3,y).",        // shared shape
        "Q :- R(1), S(1,y).",
    };
    for (const std::string& text : queries) {
      const Ucq qc = MustParse(text, &cached_mvdb->db().dict());
      const Ucq qp = MustParse(text, &plain_mvdb->db().dict());
      auto rc = cached.Query(qc, Backend::kMvIndexCC);
      auto rp = plain.Query(qp, Backend::kMvIndexCC);
      ASSERT_TRUE(rc.ok()) << rc.status().ToString();
      ASSERT_TRUE(rp.ok()) << rp.status().ToString();
      ASSERT_EQ(rc->size(), rp->size());
      for (size_t i = 0; i < rc->size(); ++i) {
        EXPECT_EQ((*rc)[i].head, (*rp)[i].head);
        uint64_t bc, bp;
        std::memcpy(&bc, &(*rc)[i].prob, sizeof(bc));
        std::memcpy(&bp, &(*rp)[i].prob, sizeof(bp));
        EXPECT_EQ(bc, bp) << text << " answer " << i;
      }
    }
    const PlanCacheStats stats = cached.plan_cache_stats();
    EXPECT_GT(stats.hits, 0u);  // the repeat and the shared shape hit
    EXPECT_GT(stats.misses, 0u);

    cached.DisablePlanCache();
    EXPECT_EQ(cached.plan_cache_stats().misses, 0u);
  }
}

}  // namespace
}  // namespace mvdb
