// Parity battery for the hot-path kernels of the offline build and the
// online CC sweep. Every kernel behind an MvIndexBuildOptions hatch —
// fused translate, radix ordering, pre-sorted synthesis, and the
// branch-light fast-intersect walk — must be bit-identical to its classic
// counterpart: same flat layout, same extended-range probabilities, same
// answer bits. The serving golden hash of serve_concurrency_test is
// re-pinned here with the fast walk toggled both ways, and randomized
// query OBDDs stress the walk's bail cases (widening fronts, true sinks
// deferred past the block level, sink-only collapses). Runs under the
// TSan and ASan/UBSan CI jobs.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <random>
#include <vector>

#include "core/engine.h"
#include "dblp/dblp.h"
#include "mvindex/mv_index.h"
#include "query/eval.h"
#include "test_util.h"

namespace mvdb {
namespace {

/// Same clamp rule as the engine/server (noise at the [0,1] borders).
double ClampProb(double p) {
  if (p < 0.0 && p > -1e-9) return 0.0;
  if (p > 1.0 && p < 1.0 + 1e-9) return 1.0;
  return p;
}

void FnvMix(uint64_t v, uint64_t* h) { *h = (*h ^ v) * 1099511628211ULL; }

uint64_t HashAnswers(const std::vector<std::vector<AnswerProb>>& per_query) {
  uint64_t h = 1469598103934665603ULL;
  FnvMix(per_query.size(), &h);
  for (const auto& answers : per_query) {
    FnvMix(answers.size(), &h);
    for (const AnswerProb& a : answers) {
      for (const Value v : a.head) {
        FnvMix(static_cast<uint64_t>(static_cast<int64_t>(v)), &h);
      }
      uint64_t bits;
      std::memcpy(&bits, &a.prob, sizeof(bits));
      FnvMix(bits, &h);
    }
  }
  return h;
}

/// FNV-1a over the flat topology, node by node (the bench_build_scale
/// parity digest).
uint64_t HashLayout(const FlatObdd& flat) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](int32_t v) {
    h = (h ^ static_cast<uint32_t>(v)) * 1099511628211ULL;
  };
  mix(flat.root());
  for (FlatId u = 0; u < static_cast<FlatId>(flat.size()); ++u) {
    mix(flat.level(u));
    mix(flat.lo(u));
    mix(flat.hi(u));
  }
  return h;
}

bool SameBits(const ScaledDouble& a, const ScaledDouble& b) {
  if (!(a == b)) return false;
  const double da = a.ToDouble();
  const double db = b.ToDouble();
  return std::memcmp(&da, &db, sizeof(double)) == 0;
}

/// The DBLP-400 instance of serve_concurrency_test, compiled once with all
/// kernels on (the defaults).
struct SharedWorkload {
  std::unique_ptr<Mvdb> mvdb;
  std::unique_ptr<QueryEngine> engine;
};

SharedWorkload& Shared() {
  static SharedWorkload* shared = [] {
    auto* s = new SharedWorkload();
    dblp::DblpConfig cfg;
    cfg.num_authors = 400;
    cfg.include_affiliation = true;
    auto mvdb = dblp::BuildDblpMvdb(cfg, nullptr);
    MVDB_CHECK(mvdb.ok());
    s->mvdb = std::move(mvdb).value();
    s->engine = std::make_unique<QueryEngine>(s->mvdb.get());
    MVDB_CHECK(s->engine->Compile().ok());
    return s;
  }();
  return *shared;
}

/// The serving-layer serial reference of serve_concurrency_test: Eval,
/// fresh-manager synthesis, one solo CC sweep per answer root.
std::vector<std::vector<AnswerProb>> ServingReference(SharedWorkload& s) {
  std::vector<Ucq> queries;
  const Table* advisor = s.mvdb->db().Find("Advisor");
  MVDB_CHECK(advisor != nullptr && advisor->size() >= 6);
  const size_t stride = advisor->size() / 6;
  for (size_t i = 0; i < 6; ++i) {
    const Value senior = advisor->At(static_cast<RowId>(i * stride), 1);
    queries.push_back(dblp::StudentsOfAdvisorQuery(
        s.mvdb.get(), dblp::AuthorName(static_cast<int>(senior))));
  }
  const Table* aff = s.mvdb->db().Find("Affiliation");
  MVDB_CHECK(aff != nullptr && aff->size() >= 3);
  for (size_t i = 0; i < 3; ++i) {
    const Value aid = aff->At(static_cast<RowId>(i), 0);
    queries.push_back(dblp::AffiliationOfAuthorQuery(
        s.mvdb.get(), dblp::AuthorName(static_cast<int>(aid))));
  }
  queries.push_back(
      dblp::StudentsOfAdvisorQuery(s.mvdb.get(), "no-such-author"));

  const MvIndex& index = s.engine->index();
  const ScaledDouble denom = index.ProbNotWScaled();
  CcSweepScratch scratch;
  std::vector<std::vector<AnswerProb>> reference;
  for (const Ucq& q : queries) {
    AnswerMap answers;
    MVDB_CHECK(Eval(s.mvdb->db(), q, EvalOptions{}, &answers).ok());
    BddManager qmgr(index.manager().order());
    std::vector<AnswerProb> out;
    for (const auto& [head, info] : answers) {
      const NodeId root = qmgr.FromLineageSynthesis(info.lineage);
      const ScaledDouble num =
          index.CCMVIntersectScaled(CcQuery{&qmgr, root}, &scratch);
      out.push_back(AnswerProb{head, ClampProb((num / denom).ToDouble())});
    }
    reference.push_back(std::move(out));
  }
  return reference;
}

// Golden hash shared with serve_concurrency_test — the fast walk must not
// move a single answer bit on the serving workload.
constexpr uint64_t kGoldenAnswers = 9734561884288702949ULL;

TEST(IntersectKernelTest, ServingGoldenHashWithFastWalkOnAndOff) {
  SharedWorkload& s = Shared();
  MvIndex& index = s.engine->mutable_index();

  ASSERT_TRUE(index.use_fast_intersect());  // default-on
  EXPECT_EQ(HashAnswers(ServingReference(s)), kGoldenAnswers);

  index.set_use_fast_intersect(false);  // classic map-driven sweep
  EXPECT_EQ(HashAnswers(ServingReference(s)), kGoldenAnswers);

  index.set_use_fast_intersect(true);
  EXPECT_EQ(HashAnswers(ServingReference(s)), kGoldenAnswers);
}

/// Builds a deterministic pool of randomized query OBDDs over the index's
/// variable order: DNF and CNF mixes over random levels, plus single
/// literals and negations — narrow chains (the fast walk's home turf),
/// widening diamonds (bail case), and constant collapses.
std::vector<NodeId> RandomQueryPool(const MvIndex& index, BddManager* qmgr,
                                    size_t count) {
  const auto& order = *index.manager().order();
  const uint32_t levels = static_cast<uint32_t>(order.num_levels());
  std::mt19937 rng(0xA5F00Du);
  auto rand_lit = [&]() {
    const VarId v = order.var_at_level(static_cast<int32_t>(rng() % levels));
    const NodeId lit = qmgr->MkVar(v);
    return (rng() % 3 == 0) ? qmgr->Not(lit) : lit;
  };
  std::vector<NodeId> pool;
  pool.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t terms = 1 + rng() % 3;
    const bool dnf = (rng() % 2) == 0;
    NodeId acc = dnf ? BddManager::kFalse : BddManager::kTrue;
    for (size_t t = 0; t < terms; ++t) {
      const size_t lits = 1 + rng() % 4;
      NodeId term = rand_lit();
      for (size_t l = 1; l < lits; ++l) {
        term = dnf ? qmgr->And(term, rand_lit()) : qmgr->Or(term, rand_lit());
      }
      acc = dnf ? qmgr->Or(acc, term) : qmgr->And(acc, term);
    }
    pool.push_back(acc);
  }
  return pool;
}

TEST(IntersectKernelTest, RandomizedQueriesFastMatchesClassicBitwise) {
  SharedWorkload& s = Shared();
  MvIndex& index = s.engine->mutable_index();
  BddManager qmgr(index.manager().order());
  const std::vector<NodeId> pool = RandomQueryPool(index, &qmgr, 200);

  CcSweepScratch scratch;
  size_t nontrivial = 0;
  for (size_t i = 0; i < pool.size(); ++i) {
    const CcQuery q{&qmgr, pool[i]};
    index.set_use_fast_intersect(false);
    const ScaledDouble classic = index.CCMVIntersectScaled(q, &scratch);
    index.set_use_fast_intersect(true);
    const ScaledDouble fast = index.CCMVIntersectScaled(q, &scratch);
    EXPECT_TRUE(SameBits(fast, classic)) << "query " << i;
    if (!classic.IsZero()) ++nontrivial;
  }
  // The pool must actually exercise the sweep, not collapse to constants.
  EXPECT_GT(nontrivial, pool.size() / 2);
}

TEST(IntersectKernelTest, BatchOfNMatchesNSoloUnderBothHatchStates) {
  SharedWorkload& s = Shared();
  MvIndex& index = s.engine->mutable_index();
  BddManager qmgr(index.manager().order());
  const std::vector<NodeId> pool = RandomQueryPool(index, &qmgr, 64);
  std::vector<CcQuery> batch;
  for (const NodeId root : pool) batch.push_back(CcQuery{&qmgr, root});

  for (const bool fast : {false, true}) {
    index.set_use_fast_intersect(fast);
    CcSweepScratch scratch;
    std::vector<ScaledDouble> batched;
    index.CCMVIntersectBatchScaled(batch, &scratch, &batched);
    ASSERT_EQ(batched.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const ScaledDouble solo = index.CCMVIntersectScaled(batch[i], &scratch);
      EXPECT_TRUE(SameBits(batched[i], solo))
          << "root " << i << " fast=" << fast;
    }
  }
  index.set_use_fast_intersect(true);
}

/// One full offline build with a given thread count and hatch setting.
struct BuiltCell {
  std::unique_ptr<Mvdb> mvdb;
  std::unique_ptr<QueryEngine> engine;
  uint64_t layout_hash = 0;
  size_t blocks = 0;
  ScaledDouble prob_not_w;
  uint64_t answers_hash = 0;
};

BuiltCell BuildCell(int threads, bool kernels_on) {
  BuiltCell cell;
  dblp::DblpConfig cfg;
  cfg.num_authors = 200;
  cfg.include_affiliation = true;
  cfg.num_threads = threads;  // parity also covers the generator streams
  auto mvdb = dblp::BuildDblpMvdb(cfg, nullptr);
  MVDB_CHECK(mvdb.ok());
  cell.mvdb = std::move(mvdb).value();
  cell.engine = std::make_unique<QueryEngine>(cell.mvdb.get());
  CompileOptions copts;
  copts.num_threads = threads;
  copts.use_fused_translate = kernels_on;
  copts.use_radix_order = kernels_on;
  copts.use_presorted_synthesis = kernels_on;
  copts.use_fast_intersect = kernels_on;
  MVDB_CHECK(cell.engine->Compile(copts).ok());
  const MvIndex& index = cell.engine->index();
  cell.layout_hash = HashLayout(index.flat());
  cell.blocks = index.blocks().size();
  cell.prob_not_w = index.ProbNotWScaled();

  // One serving-style query through the built index, hashed bitwise.
  const Table* advisor = cell.mvdb->db().Find("Advisor");
  MVDB_CHECK(advisor != nullptr && advisor->size() > 0);
  const Ucq q = dblp::StudentsOfAdvisorQuery(
      cell.mvdb.get(),
      dblp::AuthorName(static_cast<int>(advisor->At(0, 1))));
  AnswerMap answers;
  MVDB_CHECK(Eval(cell.mvdb->db(), q, EvalOptions{}, &answers).ok());
  BddManager qmgr(index.manager().order());
  CcSweepScratch scratch;
  const ScaledDouble denom = index.ProbNotWScaled();
  std::vector<AnswerProb> out;
  for (const auto& [head, info] : answers) {
    const NodeId root = qmgr.FromLineageSynthesis(info.lineage);
    const ScaledDouble num =
        index.CCMVIntersectScaled(CcQuery{&qmgr, root}, &scratch);
    out.push_back(AnswerProb{head, ClampProb((num / denom).ToDouble())});
  }
  MVDB_CHECK(!out.empty());
  cell.answers_hash = HashAnswers({out});
  return cell;
}

TEST(IntersectKernelTest, BuildKernelParityAcrossThreadCounts) {
  // All four build/serve kernels on vs all off, across thread counts
  // {1, 2, 8, 0} (0 = one shard per hardware thread): the flat layout, the
  // block chain, P0(NOT W), and the answer bits of a full query must be
  // identical everywhere.
  const BuiltCell ref = BuildCell(/*threads=*/1, /*kernels_on=*/true);
  EXPECT_GT(ref.blocks, 0u);
  for (const int threads : {1, 2, 8, 0}) {
    for (const bool kernels_on : {true, false}) {
      if (threads == 1 && kernels_on) continue;  // the reference itself
      const BuiltCell cell = BuildCell(threads, kernels_on);
      EXPECT_EQ(cell.layout_hash, ref.layout_hash)
          << "threads=" << threads << " kernels_on=" << kernels_on;
      EXPECT_EQ(cell.blocks, ref.blocks)
          << "threads=" << threads << " kernels_on=" << kernels_on;
      EXPECT_TRUE(SameBits(cell.prob_not_w, ref.prob_not_w))
          << "threads=" << threads << " kernels_on=" << kernels_on;
      EXPECT_EQ(cell.answers_hash, ref.answers_hash)
          << "threads=" << threads << " kernels_on=" << kernels_on;
    }
  }
}

}  // namespace
}  // namespace mvdb
