// Determinism of the parallel MVDB -> INDB translation: Translate() shards
// view materialization (driver-atom ranges with per-worker answer maps) and
// per-tuple weight computation over TranslateOptions::num_threads, and its
// entire output — view tuple order, weights, the W constraint query, NV
// tables and variable numbering — must be *bit-identical* for every thread
// count. A golden hash additionally pins the translated mid-size DBLP
// database, like dblp_determinism_test pins the generator, so a front-end
// refactor that silently changes the translation fails loudly.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "core/mvdb.h"
#include "dblp/dblp.h"
#include "query/parser.h"
#include "relational/database.h"
#include "test_util.h"
#include "util/rng.h"

namespace mvdb {
namespace {

using testing_util::MustParse;

void FnvMix(uint64_t v, uint64_t* h) { *h = (*h ^ v) * 1099511628211ULL; }

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// FNV-1a over every table's rows (insertion order), per-tuple weights and
/// variable ids, and the variable registry. Post-translation this covers
/// the NV tables and their fresh variables too.
uint64_t HashDatabase(const Database& db) {
  uint64_t h = 1469598103934665603ULL;
  for (const std::string& name : db.table_names()) {
    const Table* t = db.Find(name);
    for (char c : name) FnvMix(static_cast<uint64_t>(c), &h);
    FnvMix(t->arity(), &h);
    FnvMix(t->size(), &h);
    for (RowId r = 0; r < t->size(); ++r) {
      for (Value v : t->Row(r)) FnvMix(static_cast<uint64_t>(v), &h);
      if (t->probabilistic()) {
        FnvMix(DoubleBits(t->weight(r)), &h);
        FnvMix(static_cast<uint64_t>(t->var(r)), &h);
      }
    }
  }
  FnvMix(db.num_vars(), &h);
  for (size_t v = 0; v < db.num_vars(); ++v) {
    FnvMix(DoubleBits(db.var_weight(static_cast<VarId>(v))), &h);
  }
  return h;
}

/// Everything Translate() produced, hashed: the database (NV tables, vars),
/// every view tuple (head, weight bits, nv_var, canonical feature DNF), and
/// the structure of W.
uint64_t HashTranslation(const Mvdb& mvdb) {
  uint64_t h = HashDatabase(mvdb.db());
  FnvMix(mvdb.base_num_vars(), &h);
  for (const auto& tuples : mvdb.view_tuples()) {
    FnvMix(tuples.size(), &h);
    for (const ViewTuple& t : tuples) {
      for (Value v : t.head) FnvMix(static_cast<uint64_t>(v), &h);
      FnvMix(DoubleBits(t.weight), &h);
      FnvMix(static_cast<uint64_t>(t.nv_var), &h);
      FnvMix(t.feature.size(), &h);
      for (size_t c = 0; c < t.feature.clauses().size(); ++c) {
        for (VarId v : t.feature.clauses()[c]) FnvMix(static_cast<uint64_t>(v), &h);
        FnvMix(0x5eedULL, &h);
        for (VarId v : t.feature.neg_clauses()[c]) FnvMix(static_cast<uint64_t>(v), &h);
      }
    }
  }
  const Ucq& w = mvdb.W();
  FnvMix(w.disjuncts.size(), &h);
  FnvMix(static_cast<uint64_t>(w.num_vars()), &h);
  for (const ConjunctiveQuery& cq : w.disjuncts) {
    FnvMix(cq.atoms.size(), &h);
    for (const Atom& a : cq.atoms) {
      for (char c : a.relation) FnvMix(static_cast<uint64_t>(c), &h);
      for (const Term& t : a.args) {
        FnvMix(t.is_var() ? static_cast<uint64_t>(t.var)
                          : 0x8000000000000000ULL ^
                                static_cast<uint64_t>(t.constant),
               &h);
      }
    }
    FnvMix(cq.comparisons.size(), &h);
  }
  return h;
}

/// An MVDB whose view drivers are large enough (thousands of driver rows)
/// that the sharded evaluation actually fans out, unlike the tiny
/// RandomMvdb instances.
std::unique_ptr<Mvdb> WideMvdb(uint64_t seed) {
  Rng rng(seed);
  auto mvdb = std::make_unique<Mvdb>();
  Database& db = mvdb->db();
  MVDB_CHECK(db.CreateTable("R", {"x"}, true).ok());
  MVDB_CHECK(db.CreateTable("S", {"x", "y"}, true).ok());
  MVDB_CHECK(db.CreateTable("T", {"y"}, true).ok());
  const int n = 4000;
  for (int x = 1; x <= n; ++x) {
    if (rng.Chance(0.9)) db.InsertProbabilistic("R", {x}, 0.3 + rng.Uniform());
    const int fanout = static_cast<int>(rng.Below(4));
    for (int k = 0; k < fanout; ++k) {
      const Value y = 1 + static_cast<Value>(rng.Below(64));
      db.InsertProbabilistic("S", {x, y}, 0.2 + rng.Uniform() * 2.0);
    }
  }
  for (int y = 1; y <= 64; ++y) {
    db.InsertProbabilistic("T", {y}, 0.5 + rng.Uniform());
  }
  Ucq v1 = MustParse("V1(x) :- R(x), S(x,y), T(y).", &db.dict());
  MVDB_CHECK(mvdb->AddView(MarkoView(
                 "V1", std::move(v1), /*count_var=*/1,
                 [](std::span<const Value>, int64_t count) {
                   return static_cast<double>(count) / 2.0;
                 }))
                 .ok());
  Ucq v2 = MustParse("V2(y) :- T(y), S(x,y).", &db.dict());
  MVDB_CHECK(
      mvdb->AddView(MarkoView::Constant("V2", std::move(v2), 3.0)).ok());
  return mvdb;
}

TEST(TranslationParallelTest, WideMvdbThreadCountsBitIdentical) {
  for (uint64_t seed : {11ULL, 29ULL}) {
    uint64_t reference = 0;
    for (int threads : {1, 2, 8, 0}) {
      auto mvdb = WideMvdb(seed);
      ASSERT_TRUE(mvdb->Translate(TranslateOptions{threads}).ok());
      const uint64_t h = HashTranslation(*mvdb);
      if (threads == 1) {
        reference = h;
      } else {
        EXPECT_EQ(h, reference) << "seed=" << seed << " threads=" << threads;
      }
    }
  }
}

TEST(TranslationParallelTest, RandomMvdbsThreadCountsBitIdentical) {
  Rng rng(123);
  for (int round = 0; round < 20; ++round) {
    testing_util::RandomMvdbSpec spec;
    spec.domain = 3 + static_cast<int>(rng.Below(3));
    const uint64_t instance_seed = rng.Next();
    auto make = [&]() {
      Rng r(instance_seed);
      return testing_util::RandomMvdb(&r, spec);
    };
    auto serial = make();
    ASSERT_TRUE(serial->Translate(TranslateOptions{1}).ok());
    const uint64_t reference = HashTranslation(*serial);
    for (int threads : {2, 8}) {
      auto parallel = make();
      ASSERT_TRUE(parallel->Translate(TranslateOptions{threads}).ok());
      EXPECT_EQ(HashTranslation(*parallel), reference)
          << "round=" << round << " threads=" << threads;
    }
  }
}

TEST(TranslationParallelTest, DblpTranslationBitIdenticalAndViewTuplesMatch) {
  dblp::DblpConfig cfg;
  cfg.num_authors = 400;
  cfg.include_affiliation = true;
  auto build = [&](int threads) {
    auto mvdb = dblp::BuildDblpMvdb(cfg, nullptr);
    MVDB_CHECK(mvdb.ok());
    MVDB_CHECK((*mvdb)->Translate(TranslateOptions{threads}).ok());
    return std::move(*mvdb);
  };
  auto serial = build(1);
  const uint64_t reference = HashTranslation(*serial);
  for (int threads : {2, 8, 0}) {
    auto parallel = build(threads);
    EXPECT_EQ(HashTranslation(*parallel), reference) << "threads=" << threads;
    // Field-level comparison on top of the hash, pinpointing divergences.
    ASSERT_EQ(parallel->view_tuples().size(), serial->view_tuples().size());
    for (size_t i = 0; i < serial->view_tuples().size(); ++i) {
      const auto& a = serial->view_tuples()[i];
      const auto& b = parallel->view_tuples()[i];
      ASSERT_EQ(a.size(), b.size()) << "view " << i;
      for (size_t j = 0; j < a.size(); ++j) {
        ASSERT_EQ(a[j].head, b[j].head) << "view " << i << " tuple " << j;
        ASSERT_EQ(a[j].weight, b[j].weight) << "view " << i << " tuple " << j;
        ASSERT_EQ(a[j].nv_var, b[j].nv_var) << "view " << i << " tuple " << j;
        ASSERT_EQ(a[j].feature.clauses(), b[j].feature.clauses());
        ASSERT_EQ(a[j].feature.neg_clauses(), b[j].feature.neg_clauses());
      }
    }
  }
}

TEST(TranslationParallelTest, GoldenHashPinsDblp400Translation) {
  // 400 authors, affiliation on, seed 7, translated. If an intentional
  // front-end change moves this value, re-pin it *and* expect the compiled
  // index of every DBLP benchmark to shift with it.
  dblp::DblpConfig cfg;
  cfg.num_authors = 400;
  cfg.include_affiliation = true;
  auto mvdb = dblp::BuildDblpMvdb(cfg, nullptr);
  ASSERT_TRUE(mvdb.ok());
  ASSERT_TRUE((*mvdb)->Translate(TranslateOptions{0}).ok());
  EXPECT_EQ(HashTranslation(**mvdb), 13031864354544179641ULL);
}

}  // namespace
}  // namespace mvdb
