// Tests for MAP inference: exact enumeration semantics and MaxWalkSAT
// convergence, including hard constraints from denial views.

#include <gtest/gtest.h>

#include <cmath>

#include "core/mvdb.h"
#include "mln/map_inference.h"
#include "test_util.h"

namespace mvdb {
namespace {

using testing_util::MustParse;

Lineage Conj(std::initializer_list<VarId> vars) {
  Lineage l;
  l.AddClause(Clause(vars));
  return l;
}

TEST(LogWorldWeightTest, MatchesWorldWeight) {
  GroundMln mln(3, {2.0, 0.5, 1.0});
  mln.AddFeature(Conj({0, 1}), 3.0);
  const std::vector<bool> world = {true, true, false};
  EXPECT_NEAR(LogWorldWeight(mln, world), std::log(mln.WorldWeight(world)),
              1e-12);
}

TEST(LogWorldWeightTest, HardViolationIsMinusInfinity) {
  GroundMln mln(2, {1.0, 1.0});
  mln.AddFeature(Conj({0, 1}), 0.0);
  EXPECT_EQ(LogWorldWeight(mln, {true, true}), -HUGE_VAL);
  EXPECT_GT(LogWorldWeight(mln, {true, false}), -HUGE_VAL);
}

TEST(ExactMapTest, PicksHeaviestWorld) {
  // Weights 3 and 0.2: the most likely world has tuple 0 in, tuple 1 out.
  GroundMln mln(2, {3.0, 0.2});
  auto map = ExactMap(mln);
  ASSERT_TRUE(map.ok());
  EXPECT_TRUE(map->world[0]);
  EXPECT_FALSE(map->world[1]);
  EXPECT_NEAR(map->log_weight, std::log(3.0), 1e-12);
}

TEST(ExactMapTest, FeatureTipsTheBalance) {
  // Individually both tuples prefer absence (w = 0.8 < 1), but a strong
  // joint feature (w = 10) makes the joint world the MAP.
  GroundMln mln(2, {0.8, 0.8});
  mln.AddFeature(Conj({0, 1}), 10.0);
  auto map = ExactMap(mln);
  ASSERT_TRUE(map.ok());
  EXPECT_TRUE(map->world[0]);
  EXPECT_TRUE(map->world[1]);
}

TEST(ExactMapTest, DenialFeatureExcludesJointWorld) {
  GroundMln mln(2, {5.0, 5.0});
  mln.AddFeature(Conj({0, 1}), 0.0);
  auto map = ExactMap(mln);
  ASSERT_TRUE(map.ok());
  // Best world has exactly one of the two (weight 5), not both (weight 0).
  EXPECT_NE(map->world[0], map->world[1]);
}

TEST(ExactMapTest, ContradictionDetected) {
  GroundMln mln(1, {kCertainWeight});
  mln.AddFeature(Conj({0}), 0.0);
  EXPECT_EQ(ExactMap(mln).status().code(), StatusCode::kInternal);
}

TEST(MaxWalkSatTest, MatchesExactOnRandomNetworks) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 8;
    std::vector<double> tw(n);
    for (double& w : tw) w = 0.25 + rng.Uniform() * 4.0;
    GroundMln mln(n, std::move(tw));
    for (int f = 0; f < 5; ++f) {
      Clause c;
      c.push_back(static_cast<VarId>(rng.Below(n)));
      c.push_back(static_cast<VarId>(rng.Below(n)));
      Lineage lin;
      lin.AddClause(c);
      mln.AddFeature(std::move(lin), 0.3 + rng.Uniform() * 5.0);
    }
    auto exact = ExactMap(mln);
    ASSERT_TRUE(exact.ok());
    MaxWalkSatOptions opts;
    opts.seed = 100 + static_cast<uint64_t>(trial);
    auto approx = MaxWalkSat(mln, opts);
    ASSERT_TRUE(approx.ok());
    // MaxWalkSAT must find a world at least as heavy as... exactly the MAP
    // weight (it cannot exceed it).
    EXPECT_NEAR(approx->log_weight, exact->log_weight, 1e-9) << "trial " << trial;
  }
}

TEST(MaxWalkSatTest, RespectsHardConstraints) {
  GroundMln mln(2, {5.0, 5.0});
  mln.AddFeature(Conj({0, 1}), 0.0);
  auto map = MaxWalkSat(mln, MaxWalkSatOptions{});
  ASSERT_TRUE(map.ok());
  EXPECT_FALSE(map->world[0] && map->world[1]);
}

TEST(MaxWalkSatTest, MapOfAnMvdb) {
  // End to end: the MAP world of a translated MVDB's MLN respects the
  // denial view and prefers the strongly-correlated pair.
  Mvdb mvdb;
  Database& db = mvdb.db();
  ASSERT_TRUE(db.CreateTable("A", {"x", "y"}, true).ok());
  db.InsertProbabilistic("A", {1, 2}, 2.0);
  db.InsertProbabilistic("A", {1, 3}, 1.5);
  db.InsertProbabilistic("A", {2, 3}, 2.0);
  Ucq def = MustParse("V(x,y,z) :- A(x,y), A(x,z), y != z.", &db.dict());
  ASSERT_TRUE(mvdb.AddView(MarkoView::Constant("V", std::move(def), 0.0)).ok());
  ASSERT_TRUE(mvdb.Translate().ok());
  auto mln = mvdb.ToGroundMln();
  ASSERT_TRUE(mln.ok());
  auto exact = ExactMap(*mln);
  auto approx = MaxWalkSat(*mln, MaxWalkSatOptions{});
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(approx->log_weight, exact->log_weight, 1e-9);
  // The denial view: A(1,2) and A(1,3) cannot both be in the MAP world.
  EXPECT_FALSE(exact->world[0] && exact->world[1]);
}

}  // namespace
}  // namespace mvdb
