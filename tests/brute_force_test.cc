// Unit tests for src/prob/brute_force: exact model counting, including
// probabilities outside [0,1] (Section 3.3).

#include <gtest/gtest.h>

#include "prob/brute_force.h"
#include "test_util.h"

namespace mvdb {
namespace {

TEST(BruteForceTest, Constants) {
  Lineage f;  // false
  Lineage t;
  t.AddClause({});
  std::vector<double> probs;
  EXPECT_DOUBLE_EQ(BruteForceProb(f, probs), 0.0);
  EXPECT_DOUBLE_EQ(BruteForceProb(t, probs), 1.0);
}

TEST(BruteForceTest, SingleVar) {
  Lineage l;
  l.AddClause({0});
  EXPECT_NEAR(BruteForceProb(l, {0.3}), 0.3, 1e-12);
}

TEST(BruteForceTest, IndependentOr) {
  // P(x0 v x1) = 1 - (1-p0)(1-p1)
  Lineage l;
  l.AddClause({0});
  l.AddClause({1});
  EXPECT_NEAR(BruteForceProb(l, {0.3, 0.4}), 1 - 0.7 * 0.6, 1e-12);
}

TEST(BruteForceTest, Conjunction) {
  Lineage l;
  l.AddClause({0, 1});
  EXPECT_NEAR(BruteForceProb(l, {0.3, 0.4}), 0.12, 1e-12);
}

TEST(BruteForceTest, SharedVariableCorrelation) {
  // P(x0x1 v x0x2) = p0 (1 - (1-p1)(1-p2))
  Lineage l;
  l.AddClause({0, 1});
  l.AddClause({0, 2});
  const double expected = 0.5 * (1 - 0.6 * 0.7);
  EXPECT_NEAR(BruteForceProb(l, {0.5, 0.4, 0.3}), expected, 1e-12);
}

TEST(BruteForceTest, NegativeProbabilityIsMultilinearExtension) {
  // With p outside [0,1] the enumeration is still the multilinear extension:
  // P(x0 v x1) = p0 + p1 - p0 p1 must hold identically.
  const std::vector<double> probs = {-1.5, 0.4};
  Lineage l;
  l.AddClause({0});
  l.AddClause({1});
  EXPECT_NEAR(BruteForceProb(l, probs), -1.5 + 0.4 - (-1.5 * 0.4), 1e-12);
}

TEST(BruteForceTest, AndNot) {
  // P(x0 ^ !x1) = p0 (1 - p1)
  Lineage a, b;
  a.AddClause({0});
  b.AddClause({1});
  EXPECT_NEAR(BruteForceProbAndNot(a, b, {0.3, 0.4}), 0.3 * 0.6, 1e-12);
}

TEST(BruteForceTest, AndNotSharedVars) {
  // P(x0 ^ !(x0 x1)) = p0 (1 - p1)
  Lineage a, b;
  a.AddClause({0});
  b.AddClause({0, 1});
  EXPECT_NEAR(BruteForceProbAndNot(a, b, {0.3, 0.4}), 0.3 * 0.6, 1e-12);
}

TEST(BruteForceTest, AndNotConstants) {
  Lineage t;
  t.AddClause({});
  Lineage f;
  EXPECT_DOUBLE_EQ(BruteForceProbAndNot(t, f, {}), 1.0);
  EXPECT_DOUBLE_EQ(BruteForceProbAndNot(t, t, {}), 0.0);
  EXPECT_DOUBLE_EQ(BruteForceProbAndNot(f, f, {}), 0.0);
}

TEST(BruteForceTest, ComplementSumsToOne) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const Lineage l = testing_util::RandomLineage(&rng, 6, 4, 3);
    const auto probs = testing_util::RandomProbs(&rng, 6);
    Lineage t;
    t.AddClause({});
    const double p = BruteForceProb(l, probs);
    const double not_p = BruteForceProbAndNot(t, l, probs);
    EXPECT_NEAR(p + not_p, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace mvdb
