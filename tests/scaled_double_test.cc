// Tests for extended-range arithmetic (util/scaled_double.h): the substrate
// that keeps Eq. 5 finite when P0(NOT W) is a product of thousands of
// (unbounded, possibly negative) block factors.

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "util/scaled_double.h"

namespace mvdb {
namespace {

TEST(ScaledDoubleTest, ZeroAndOne) {
  EXPECT_TRUE(ScaledDouble::Zero().IsZero());
  EXPECT_DOUBLE_EQ(ScaledDouble::Zero().ToDouble(), 0.0);
  EXPECT_DOUBLE_EQ(ScaledDouble::One().ToDouble(), 1.0);
  EXPECT_FALSE(ScaledDouble::One().IsZero());
}

TEST(ScaledDoubleTest, RoundTripInRange) {
  for (double v : {0.5, -0.25, 1234.5678, -1e-300, 1e300, 3.0}) {
    EXPECT_DOUBLE_EQ(ScaledDouble(v).ToDouble(), v) << v;
  }
}

TEST(ScaledDoubleTest, ArithmeticMatchesDouble) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double a = (rng.Uniform() - 0.5) * 100;
    const double b = (rng.Uniform() - 0.5) * 100;
    EXPECT_NEAR((ScaledDouble(a) * ScaledDouble(b)).ToDouble(), a * b, 1e-9);
    EXPECT_NEAR((ScaledDouble(a) + ScaledDouble(b)).ToDouble(), a + b, 1e-9);
    EXPECT_NEAR((ScaledDouble(a) - ScaledDouble(b)).ToDouble(), a - b, 1e-9);
    if (b != 0) {
      EXPECT_NEAR((ScaledDouble(a) / ScaledDouble(b)).ToDouble(), a / b, 1e-9);
    }
  }
}

TEST(ScaledDoubleTest, ProductBeyondDoubleRange) {
  // 10000 factors of 1e-50 underflow double immediately; the scaled product
  // holds the exact exponent and the ratio of two such products is exact.
  ScaledDouble p = ScaledDouble::One();
  ScaledDouble q = ScaledDouble::One();
  for (int i = 0; i < 10000; ++i) {
    p *= ScaledDouble(1e-50);
    q *= ScaledDouble(2e-50);
  }
  EXPECT_DOUBLE_EQ(p.ToDouble(), 0.0);  // double underflows, by design
  // The ratio (1/2)^10000 is itself outside double range; its log is exact.
  const ScaledDouble ratio = p / q;
  EXPECT_NEAR(ratio.LogMagnitude() / std::log(2.0), -10000.0, 1e-6);
  // A ratio of *equal* products is exactly 1.
  EXPECT_DOUBLE_EQ((p / p).ToDouble(), 1.0);
}

TEST(ScaledDoubleTest, OverflowDirection) {
  ScaledDouble big = ScaledDouble::One();
  for (int i = 0; i < 1000; ++i) big *= ScaledDouble(-1e10);
  EXPECT_TRUE(std::isinf(big.ToDouble()));
  EXPECT_FALSE(big.IsZero());
  // Sign tracked through the mantissa: (-)^1000 = +.
  EXPECT_FALSE(big.IsNegative());
  big *= ScaledDouble(-1.0);
  EXPECT_TRUE(big.IsNegative());
}

TEST(ScaledDoubleTest, AdditionAcrossMagnitudes) {
  // Adding a negligible term leaves the big one unchanged; adding
  // comparable terms is exact.
  ScaledDouble big(1e200);
  big *= ScaledDouble(1e200);  // 1e400, out of double range
  const ScaledDouble sum = big + ScaledDouble(1.0);
  EXPECT_NEAR((sum / big).ToDouble(), 1.0, 1e-12);

  EXPECT_DOUBLE_EQ((ScaledDouble(3.0) + ScaledDouble(4.0)).ToDouble(), 7.0);
}

TEST(ScaledDoubleTest, CancellationToZero) {
  const ScaledDouble a(0.375);
  EXPECT_TRUE((a - a).IsZero());
}

TEST(ScaledDoubleTest, NegativeProbabilityShapes) {
  // The translated NV probabilities: p0 = 1 - w for w in the MarkoView.
  // Shannon expansion terms (1-p0) = w stay exact.
  const double w = 2.5;
  const ScaledDouble p0(1.0 - w);
  const ScaledDouble one_minus = ScaledDouble::One() - p0;
  EXPECT_NEAR(one_minus.ToDouble(), w, 1e-12);
}

TEST(ScaledDoubleTest, LogMagnitude) {
  ScaledDouble p = ScaledDouble::One();
  for (int i = 0; i < 100; ++i) p *= ScaledDouble(0.5);
  EXPECT_NEAR(p.LogMagnitude(), 100.0 * std::log(0.5), 1e-9);
  EXPECT_EQ(ScaledDouble::Zero().LogMagnitude(), -HUGE_VAL);
}

TEST(ScaledDoubleTest, Equality) {
  EXPECT_TRUE(ScaledDouble(2.0) == ScaledDouble(2.0));
  EXPECT_FALSE(ScaledDouble(2.0) == ScaledDouble(3.0));
  EXPECT_TRUE(ScaledDouble(0.0) == ScaledDouble::Zero());
}

}  // namespace
}  // namespace mvdb
