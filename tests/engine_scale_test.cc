// Scale-regression tests for the query engine: at DBLP scale the Eq. 5
// denominator P0(NOT W) is a product of thousands of block factors and
// leaves IEEE double range entirely. These tests pin the extended-range
// behaviour: answers stay exact (closed form) even when the intermediate
// quantities under/overflow double.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/engine.h"
#include "dblp/dblp.h"
#include "test_util.h"

namespace mvdb {
namespace {

using testing_util::MustParse;

/// n independent copies of Example 1's view V(x)[w] :- R(x): the blocks are
/// single-variable, so the closed form per tuple is
///   P(R(a)) = w * w1 / (1 + w * w1),
/// independent of n, while P0(NOT W) = prod over tuples of a factor < 1 (or
/// > 1 for w > 1), i.e. exponentially small/large in n.
std::unique_ptr<Mvdb> ManyBlockMvdb(int n, double tuple_weight, double view_weight) {
  auto mvdb = std::make_unique<Mvdb>();
  Database& db = mvdb->db();
  MVDB_CHECK(db.CreateTable("R", {"x"}, true).ok());
  for (int x = 1; x <= n; ++x) {
    db.InsertProbabilistic("R", {x}, tuple_weight);
  }
  Ucq def = MustParse("V(x) :- R(x).", &db.dict());
  MVDB_CHECK(mvdb->AddView(
                 MarkoView::Constant("V", std::move(def), view_weight)).ok());
  return mvdb;
}

class EngineScaleTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineScaleTest, DenominatorUnderflowStaysExact) {
  const int n = GetParam();
  const double w1 = 1.0, w = 0.5;
  auto mvdb = ManyBlockMvdb(n, w1, w);
  QueryEngine engine(mvdb.get());
  ASSERT_TRUE(engine.Compile().ok());
  // Per-block factor: Phi-normalized P(not (NV ^ R)) = 1 - p0*pR = 0.75,
  // so P0(NOT W) = 0.75^n — underflows double beyond ~2500 blocks. The
  // per-tuple answer must remain the closed form w*w1/(1+w*w1) = 1/3.
  const double expected = w * w1 / (1.0 + w * w1);
  Ucq q = MustParse("Q :- R(1).", &mvdb->db().dict());
  for (Backend b : {Backend::kObddReuse, Backend::kMvIndex, Backend::kMvIndexCC}) {
    auto p = engine.QueryBoolean(q, b);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    EXPECT_NEAR(*p, expected, 1e-9)
        << "n=" << n << " backend=" << static_cast<int>(b);
  }
}

INSTANTIATE_TEST_SUITE_P(BlockCounts, EngineScaleTest,
                         ::testing::Values(10, 500, 3000, 6000));

TEST(EngineScaleTest, DenominatorOverflowStaysExact) {
  // Positive correlations (w > 1): per-block factor 1 + (w-1) p exceeds 1
  // and the product overflows double. Closed form per tuple as before.
  const int n = 6000;
  const double w1 = 1.0, w = 3.0;
  auto mvdb = ManyBlockMvdb(n, w1, w);
  QueryEngine engine(mvdb.get());
  ASSERT_TRUE(engine.Compile().ok());
  EXPECT_TRUE(std::isinf(engine.ProbNotW()) || engine.ProbNotW() > 1.0);
  const double expected = w * w1 / (1.0 + w * w1);
  Ucq q = MustParse("Q :- R(2).", &mvdb->db().dict());
  auto p = engine.QueryBoolean(q, Backend::kMvIndexCC);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, expected, 1e-9);
}

TEST(EngineScaleTest, MixedSignBlocksStayInRange) {
  // Alternate denial views (factor < 1) and strong positive views
  // (factor > 1): the running product swings through both extremes.
  auto mvdb = std::make_unique<Mvdb>();
  Database& db = mvdb->db();
  ASSERT_TRUE(db.CreateTable("R", {"x"}, true).ok());
  ASSERT_TRUE(db.CreateTable("S", {"x"}, true).ok());
  const int n = 2000;
  for (int x = 1; x <= n; ++x) {
    db.InsertProbabilistic("R", {x}, 1.0);
    db.InsertProbabilistic("S", {x}, 1.0);
  }
  Ucq v1 = MustParse("V1(x) :- R(x), S(x).", &db.dict());
  ASSERT_TRUE(mvdb->AddView(MarkoView::Constant("V1", std::move(v1), 9.0)).ok());
  QueryEngine engine(mvdb.get());
  ASSERT_TRUE(engine.Compile().ok());
  // Closed form per x (Example 1): P(R ^ S) = w w1 w2 / (1+w1+w2+w w1 w2).
  const double expected = 9.0 / (1 + 1 + 1 + 9.0);
  Ucq q = MustParse("Q :- R(77), S(77).", &db.dict());
  auto p = engine.QueryBoolean(q, Backend::kMvIndexCC);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, expected, 1e-9);
}

TEST(EngineScaleTest, BuildStatsCoverEveryPipelinePhase) {
  // The offline pipeline is translate -> order -> partition -> compile ->
  // stitch -> import; bench_build_scale reports this breakdown from
  // MvIndexBuildStats, so every phase timing must actually be populated
  // (the front-end phases are filled in by QueryEngine::Compile, the rest
  // inside MvIndex::Build).
  dblp::DblpConfig cfg;
  cfg.num_authors = 2000;
  auto mvdb = dblp::BuildDblpMvdb(cfg, nullptr);
  ASSERT_TRUE(mvdb.ok());
  QueryEngine engine(mvdb->get());
  ASSERT_TRUE(engine.Compile().ok());
  const MvIndexBuildStats& stats = engine.index().build_stats();
  EXPECT_GT(stats.translate_seconds, 0.0);
  EXPECT_GT(stats.order_seconds, 0.0);
  EXPECT_GT(stats.partition_seconds, 0.0);
  EXPECT_GT(stats.compile_seconds, 0.0);
  EXPECT_GT(stats.stitch_seconds, 0.0);
  EXPECT_GT(stats.import_seconds, 0.0);
  EXPECT_GT(stats.block_tasks, 0u);
  EXPECT_GT(stats.blocks, 0u);
  EXPECT_GT(stats.flat_nodes, 0u);
  EXPECT_GT(stats.plan_templates, 0u);
  EXPECT_GT(stats.template_blocks, 0u);
  EXPECT_LE(stats.template_plan_seconds, stats.compile_seconds);

  // The six phases partition the build: no phase double-counted, none
  // omitted. Every instruction of QueryEngine::Compile runs inside exactly
  // one phase window, so (a) the sum can never exceed the end-to-end wall
  // time, and (b) it must reproduce it up to clock-read noise and
  // scheduler preemption between adjacent windows. The slack is generous
  // (sanitizer jobs run this test on loaded CI runners) but still
  // catches phase-sized omissions like the unattributed full-chain Not()
  // and container teardown the audit removed.
  const double phase_sum = stats.translate_seconds + stats.order_seconds +
                           stats.partition_seconds + stats.compile_seconds +
                           stats.stitch_seconds + stats.import_seconds;
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_LE(phase_sum, stats.total_seconds + 1e-6);
  EXPECT_NEAR(phase_sum, stats.total_seconds,
              std::max(0.15, 0.15 * stats.total_seconds));

  // Compiling through an already-translated MVDB reports a zero translate
  // phase (nothing ran) but still times the rest.
  auto pre = dblp::BuildDblpMvdb(cfg, nullptr);
  ASSERT_TRUE(pre.ok());
  ASSERT_TRUE((*pre)->Translate().ok());
  QueryEngine engine2(pre->get());
  ASSERT_TRUE(engine2.Compile().ok());
  const MvIndexBuildStats& stats2 = engine2.index().build_stats();
  EXPECT_EQ(stats2.translate_seconds, 0.0);
  EXPECT_GT(stats2.order_seconds, 0.0);
  EXPECT_GT(stats2.compile_seconds, 0.0);
}

TEST(EngineScaleTest, FullDblpPipelineModerateScale) {
  dblp::DblpConfig cfg;
  cfg.num_authors = 2000;
  auto mvdb = dblp::BuildDblpMvdb(cfg, nullptr);
  ASSERT_TRUE(mvdb.ok());
  QueryEngine engine(mvdb->get());
  ASSERT_TRUE(engine.Compile().ok());
  const Table* advisor = (*mvdb)->db().Find("Advisor");
  ASSERT_GT(advisor->size(), 0u);
  int checked = 0;
  for (size_t r = 0; r < advisor->size() && checked < 5; r += 37, ++checked) {
    const Value senior = advisor->At(static_cast<RowId>(r), 1);
    Ucq q = dblp::StudentsOfAdvisorQuery(
        mvdb->get(), dblp::AuthorName(static_cast<int>(senior)));
    auto cc = engine.Query(q, Backend::kMvIndexCC);
    auto reuse = engine.Query(q, Backend::kObddReuse);
    ASSERT_TRUE(cc.ok());
    ASSERT_TRUE(reuse.ok());
    ASSERT_EQ(cc->size(), reuse->size());
    for (size_t i = 0; i < cc->size(); ++i) {
      EXPECT_NEAR((*cc)[i].prob, (*reuse)[i].prob, 1e-9);
      EXPECT_GE((*cc)[i].prob, 0.0);
      EXPECT_LE((*cc)[i].prob, 1.0);
      EXPECT_FALSE(std::isnan((*cc)[i].prob));
    }
  }
}

}  // namespace
}  // namespace mvdb
