// Tests for top-k query answering on the engine.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "dblp/dblp.h"
#include "test_util.h"

namespace mvdb {
namespace {

using testing_util::MustParse;

TEST(TopKTest, OrdersByProbabilityDescending) {
  Mvdb mvdb;
  Database& db = mvdb.db();
  ASSERT_TRUE(db.CreateTable("R", {"x"}, true).ok());
  db.InsertProbabilistic("R", {1}, 0.25);  // p = 0.2
  db.InsertProbabilistic("R", {2}, 4.0);   // p = 0.8
  db.InsertProbabilistic("R", {3}, 1.0);   // p = 0.5
  QueryEngine engine(&mvdb);
  ASSERT_TRUE(engine.Compile().ok());
  Ucq q = MustParse("Q(x) :- R(x).", &db.dict());
  auto top = engine.QueryTopK(q, 2);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  EXPECT_EQ((*top)[0].head[0], 2);
  EXPECT_NEAR((*top)[0].prob, 0.8, 1e-12);
  EXPECT_EQ((*top)[1].head[0], 3);
  EXPECT_NEAR((*top)[1].prob, 0.5, 1e-12);
}

TEST(TopKTest, KLargerThanAnswersReturnsAll) {
  Mvdb mvdb;
  Database& db = mvdb.db();
  ASSERT_TRUE(db.CreateTable("R", {"x"}, true).ok());
  db.InsertProbabilistic("R", {1}, 1.0);
  QueryEngine engine(&mvdb);
  ASSERT_TRUE(engine.Compile().ok());
  Ucq q = MustParse("Q(x) :- R(x).", &db.dict());
  auto top = engine.QueryTopK(q, 100);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 1u);
}

TEST(TopKTest, RespectsMarkoViewCorrelations) {
  // Two candidate advisors for the same student under a denial view: the
  // one with higher prior must rank first, and both probabilities must be
  // deflated relative to their independent priors.
  Mvdb mvdb;
  Database& db = mvdb.db();
  ASSERT_TRUE(db.CreateTable("A", {"x", "y"}, true).ok());
  db.InsertProbabilistic("A", {1, 2}, 3.0);
  db.InsertProbabilistic("A", {1, 3}, 1.0);
  Ucq def = MustParse("V(x,y,z) :- A(x,y), A(x,z), y != z.", &db.dict());
  ASSERT_TRUE(mvdb.AddView(MarkoView::Constant("V", std::move(def), 0.0)).ok());
  QueryEngine engine(&mvdb);
  ASSERT_TRUE(engine.Compile().ok());
  Ucq q = MustParse("Q(y) :- A(1,y).", &db.dict());
  auto top = engine.QueryTopK(q, 2);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  EXPECT_EQ((*top)[0].head[0], 2);
  EXPECT_GT((*top)[0].prob, (*top)[1].prob);
  // Deflated vs independent prior p = 3/4 and 1/2 (the denial removes the
  // both-advisors worlds).
  EXPECT_LT((*top)[0].prob, 0.75);
  EXPECT_LT((*top)[1].prob, 0.5);
  // And they agree with brute force.
  auto brute = engine.QueryTopK(q, 2, Backend::kBruteForce);
  ASSERT_TRUE(brute.ok());
  EXPECT_NEAR((*top)[0].prob, (*brute)[0].prob, 1e-9);
  EXPECT_NEAR((*top)[1].prob, (*brute)[1].prob, 1e-9);
}

TEST(TopKTest, DblpTopAdvisees) {
  auto mvdb = dblp::BuildDblpMvdb(dblp::DblpConfig{.num_authors = 80}, nullptr);
  ASSERT_TRUE(mvdb.ok());
  QueryEngine engine(mvdb->get());
  ASSERT_TRUE(engine.Compile().ok());
  const Table* advisor = (*mvdb)->db().Find("Advisor");
  ASSERT_GT(advisor->size(), 0u);
  const Value senior = advisor->At(0, 1);
  Ucq q = dblp::StudentsOfAdvisorQuery(
      mvdb->get(), dblp::AuthorName(static_cast<int>(senior)));
  auto top = engine.QueryTopK(q, 3);
  ASSERT_TRUE(top.ok());
  for (size_t i = 1; i < top->size(); ++i) {
    EXPECT_GE((*top)[i - 1].prob, (*top)[i].prob);
  }
}

}  // namespace
}  // namespace mvdb
