// Unit + property tests for the OBDD package: manager apply/synthesis,
// concatenation, variable orders, and the structure-driven ConOBDD
// construction (Section 4.2, Propositions 1-2).

#include <gtest/gtest.h>

#include "obdd/conobdd.h"
#include "obdd/manager.h"
#include "obdd/order.h"
#include "query/eval.h"
#include "prob/brute_force.h"
#include "test_util.h"

namespace mvdb {
namespace {

using testing_util::Fig3Database;
using testing_util::MustParse;
using testing_util::RandomLineage;
using testing_util::RandomProbs;

std::vector<VarId> Identity(int n) {
  std::vector<VarId> order(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  return order;
}

TEST(BddManagerTest, Terminals) {
  BddManager mgr(Identity(2));
  EXPECT_EQ(mgr.And(BddManager::kTrue, BddManager::kFalse), BddManager::kFalse);
  EXPECT_EQ(mgr.Or(BddManager::kTrue, BddManager::kFalse), BddManager::kTrue);
  EXPECT_EQ(mgr.Not(BddManager::kTrue), BddManager::kFalse);
}

TEST(BddManagerTest, MkReduces) {
  BddManager mgr(Identity(2));
  EXPECT_EQ(mgr.Mk(0, BddManager::kTrue, BddManager::kTrue), BddManager::kTrue);
}

TEST(BddManagerTest, HashConsing) {
  BddManager mgr(Identity(2));
  const NodeId a = mgr.MkVar(0);
  const NodeId b = mgr.MkVar(0);
  EXPECT_EQ(a, b);
}

TEST(BddManagerTest, ProbSingleVar) {
  BddManager mgr(Identity(1));
  EXPECT_NEAR(mgr.Prob(mgr.MkVar(0), {0.3}), 0.3, 1e-12);
}

TEST(BddManagerTest, ApplyMatchesBruteForce) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 6;
    BddManager mgr(Identity(n));
    const Lineage lineage = RandomLineage(&rng, n, 5, 3);
    const auto probs = RandomProbs(&rng, n, /*allow_negative=*/trial % 2 == 1);
    const NodeId f = mgr.FromLineageSynthesis(lineage);
    EXPECT_NEAR(mgr.Prob(f, probs), BruteForceProb(lineage, probs), 1e-9)
        << lineage.ToString();
  }
}

TEST(BddManagerTest, NotMatchesComplement) {
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 6;
    BddManager mgr(Identity(n));
    const Lineage lineage = RandomLineage(&rng, n, 4, 3);
    const auto probs = RandomProbs(&rng, n);
    const NodeId f = mgr.FromLineageSynthesis(lineage);
    EXPECT_NEAR(mgr.Prob(mgr.Not(f), probs), 1.0 - mgr.Prob(f, probs), 1e-9);
  }
}

TEST(BddManagerTest, NotSurvivesChainDeeperThanTheStack) {
  // The NOT W chain is one long thin OBDD (~1.4M nodes at the paper's DBLP
  // scale); Not() must not recurse node-per-node. 400K levels overflows an
  // 8 MB stack with one frame per node — this is the regression test for
  // the iterative rewrite.
  const int n = 400000;
  BddManager mgr(Identity(n));
  Clause all;
  all.reserve(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) all.push_back(static_cast<VarId>(v));
  const NodeId chain = mgr.FromClause(all);   // conjunction chain, depth n
  const NodeId not_chain = mgr.Not(chain);
  EXPECT_EQ(mgr.CountNodes(not_chain), mgr.CountNodes(chain));
  EXPECT_EQ(mgr.Not(not_chain), chain);  // involution through the cache
}

TEST(BddManagerTest, ConcatOrEqualsOrOnDisjointRanges) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    BddManager mgr(Identity(8));
    // f over vars 0..3, g over vars 4..7: ranges do not interleave.
    Lineage fl, gl;
    for (int c = 0; c < 3; ++c) {
      fl.AddClause({static_cast<VarId>(rng.Below(4)),
                    static_cast<VarId>(rng.Below(4))});
      gl.AddClause({static_cast<VarId>(4 + rng.Below(4)),
                    static_cast<VarId>(4 + rng.Below(4))});
    }
    const NodeId f = mgr.FromLineageSynthesis(fl);
    const NodeId g = mgr.FromLineageSynthesis(gl);
    const auto probs = RandomProbs(&rng, 8);
    EXPECT_NEAR(mgr.Prob(mgr.ConcatOr(f, g), probs),
                mgr.Prob(mgr.Or(f, g), probs), 1e-12);
    EXPECT_NEAR(mgr.Prob(mgr.ConcatAnd(f, g), probs),
                mgr.Prob(mgr.And(f, g), probs), 1e-12);
  }
}

TEST(BddManagerTest, ConcatSizesAdd) {
  BddManager mgr(Identity(8));
  Lineage fl, gl;
  fl.AddClause({0, 1});
  fl.AddClause({2, 3});
  gl.AddClause({4, 5});
  gl.AddClause({6, 7});
  const NodeId f = mgr.FromLineageSynthesis(fl);
  const NodeId g = mgr.FromLineageSynthesis(gl);
  const size_t nf = mgr.CountNodes(f);
  const size_t ng = mgr.CountNodes(g);
  const NodeId c = mgr.ConcatOr(f, g);
  // |concat| <= |f| + |g| (sinks shared, so minus the merged sinks).
  EXPECT_LE(mgr.CountNodes(c), nf + ng);
}

TEST(BddManagerTest, LevelRange) {
  BddManager mgr(Identity(8));
  Lineage l;
  l.AddClause({2, 5});
  const NodeId f = mgr.FromLineageSynthesis(l);
  const auto [lo, hi] = mgr.LevelRange(f);
  EXPECT_EQ(lo, 2);
  EXPECT_EQ(hi, 5);
  const auto [slo, shi] = mgr.LevelRange(BddManager::kTrue);
  EXPECT_GT(slo, shi);  // empty range for sinks
}

TEST(OrderTest, Fig3OrderInterleaves) {
  auto db = Fig3Database();
  // Identity pi: Pi = X1, Y1, Y2, X2, Y3, Y4 (Section 4.2's example).
  const auto order = BuildDefaultOrder(*db);
  ASSERT_EQ(order.size(), 6u);
  // Vars: R rows get 0,1; S rows get 2..5 (insert order in Fig3Database).
  EXPECT_EQ(order[0], 0);  // R(a1) = X1
  EXPECT_EQ(order[1], 2);  // S(a1,b1) = Y1
  EXPECT_EQ(order[2], 3);  // S(a1,b2) = Y2
  EXPECT_EQ(order[3], 1);  // R(a2) = X2
  EXPECT_EQ(order[4], 4);  // S(a2,b3) = Y3
  EXPECT_EQ(order[5], 5);  // S(a2,b4) = Y4
}

TEST(OrderTest, ComponentRankGroups) {
  auto db = Fig3Database();
  OrderSpec spec;
  spec.component_rank["S"] = 0;
  spec.component_rank["R"] = 1;
  const auto order = BuildVariableOrder(*db, spec);
  // All S variables (2..5) before all R variables (0..1).
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[3], 5);
  EXPECT_EQ(order[4], 0);
  EXPECT_EQ(order[5], 1);
}

TEST(OrderTest, PermutationReordersTuples) {
  auto db = Fig3Database();
  OrderSpec spec;
  spec.pi["S"] = {1, 0};  // sort S by b first
  const auto order = BuildVariableOrder(*db, spec);
  // S keys become (11,1),(12,1),(13,2),(14,2); R keys (1),(2).
  // Lexicographic: R(1), R(2), then all S (keys start at 11).
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(ConObddTest, Fig3Construction) {
  auto db = Fig3Database();
  BddManager mgr(BuildDefaultOrder(*db));
  ConObddBuilder builder(*db, &mgr);
  Ucq q = MustParse("Q :- R(x), S(x,y).", &db->dict());
  auto f = builder.Build(q);
  ASSERT_TRUE(f.ok());
  // The Fig. 3 OBDD has 6 internal nodes + 2 sinks = 8.
  EXPECT_EQ(mgr.CountNodes(*f), 8u);
  // Separator construction: concatenations only, no synthesis.
  EXPECT_GT(builder.concat_count(), 0u);
  // Probability matches brute force.
  const auto probs = db->VarProbs();
  Ucq q2 = MustParse("Q :- R(x), S(x,y).", &db->dict());
  const Lineage lin = *EvalBoolean(*db, q2);
  EXPECT_NEAR(mgr.Prob(*f, probs), BruteForceProb(lin, probs), 1e-12);
}

TEST(ConObddTest, MatchesSynthesisOnRandomQueries) {
  // Property: ConOBDD and plain synthesis compute the same function, for a
  // variety of query shapes including non-inversion-free ones.
  const char* queries[] = {
      "Q :- R(x), S(x,y).",
      "Q :- S(x,y).",
      "Q :- R(x), S(x,y), T(y).",           // H0: synthesis fallback
      "Q :- R(x). Q :- T(y).",              // independent union
      "Q :- R(x), S(x,y). Q :- T(u), S(u,v).",
      "Q :- S(x,y1), S(x,y2), y1 != y2.",   // self-join
      "Q :- R(1), S(1,y).",                 // constants
      "Q :- R(x), S(x,11).",
  };
  Rng rng(12);
  for (const char* qs : queries) {
    Database db;
    ASSERT_TRUE(db.CreateTable("R", {"a"}, true).ok());
    ASSERT_TRUE(db.CreateTable("S", {"a", "b"}, true).ok());
    ASSERT_TRUE(db.CreateTable("T", {"b"}, true).ok());
    for (int x = 1; x <= 3; ++x) {
      if (rng.Chance(0.8)) db.InsertProbabilistic("R", {x}, 1.0 + rng.Uniform());
      if (rng.Chance(0.8)) db.InsertProbabilistic("T", {10 + x}, 0.5);
      for (int y = 1; y <= 3; ++y) {
        if (rng.Chance(0.6)) {
          db.InsertProbabilistic("S", {x, 10 + y}, 0.4 + rng.Uniform());
        }
      }
    }
    BddManager mgr(BuildDefaultOrder(db));
    ConObddBuilder builder(db, &mgr);
    Ucq q = MustParse(qs, &db.dict());
    auto f = builder.Build(q);
    ASSERT_TRUE(f.ok()) << qs << ": " << f.status().ToString();
    const Lineage lin = *EvalBoolean(db, q);
    const auto probs = db.VarProbs();
    EXPECT_NEAR(mgr.Prob(*f, probs), BruteForceProb(lin, probs), 1e-9) << qs;
  }
}

TEST(ConObddTest, InversionFreeConstantWidth) {
  // Proposition 2: for the inversion-free query R(x),S(x,y) the OBDD width
  // stays bounded as the domain grows (here: width <= 2 per level since the
  // per-value blocks chain one after another).
  for (int n : {5, 10, 20, 40}) {
    Database db;
    ASSERT_TRUE(db.CreateTable("R", {"a"}, true).ok());
    ASSERT_TRUE(db.CreateTable("S", {"a", "b"}, true).ok());
    for (int x = 1; x <= n; ++x) {
      db.InsertProbabilistic("R", {x}, 1.0);
      db.InsertProbabilistic("S", {x, 100 + x}, 1.0);
      db.InsertProbabilistic("S", {x, 200 + x}, 1.0);
    }
    BddManager mgr(BuildDefaultOrder(db));
    ConObddBuilder builder(db, &mgr);
    Ucq q = MustParse("Q :- R(x), S(x,y).", &db.dict());
    auto f = builder.Build(q);
    ASSERT_TRUE(f.ok());
    // Size grows linearly: one small block per domain value. 3n tuples give
    // at most 2 nodes per variable.
    EXPECT_LE(mgr.CountNodes(*f), 2u * 3u * static_cast<size_t>(n) + 2u);
    EXPECT_EQ(builder.synthesis_count(), 0u);  // concatenations only
  }
}

TEST(ConObddTest, SeparatorSizeIsSumOfBlocks) {
  // Proposition 1 on the Fig. 3 instance: 3 nodes per a-block, 2 blocks.
  auto db = Fig3Database();
  BddManager mgr(BuildDefaultOrder(*db));
  ConObddBuilder builder(*db, &mgr);
  Ucq q = MustParse("Q :- R(x), S(x,y).", &db->dict());
  auto f = builder.Build(q);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(mgr.CountNodes(*f) - 2, 6u);  // 2 blocks x 3 nodes
}

TEST(ConObddTest, DeterministicDisjunctShortCircuits) {
  Database db;
  ASSERT_TRUE(db.CreateTable("D", {"a"}, false).ok());
  ASSERT_TRUE(db.CreateTable("P", {"a"}, true).ok());
  db.InsertDeterministic("D", {1});
  db.InsertProbabilistic("P", {1}, 1.0);
  BddManager mgr(BuildDefaultOrder(db));
  ConObddBuilder builder(db, &mgr);
  Ucq q = MustParse("Q :- P(x). Q :- D(y).", &db.dict());
  auto f = builder.Build(q);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*f, BddManager::kTrue);
}

TEST(ConObddTest, EmptyQueryIsFalse) {
  Database db;
  ASSERT_TRUE(db.CreateTable("P", {"a"}, true).ok());
  BddManager mgr(BuildDefaultOrder(db));
  ConObddBuilder builder(db, &mgr);
  Ucq q = MustParse("Q :- P(x).", &db.dict());
  auto f = builder.Build(q);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*f, BddManager::kFalse);
}

}  // namespace
}  // namespace mvdb
