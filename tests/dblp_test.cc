// Tests for the synthetic DBLP workload generator and the paper's three
// MarkoViews over it (Fig. 1).

#include <gtest/gtest.h>

#include "core/engine.h"
#include "dblp/dblp.h"
#include "query/analysis.h"

#include <cmath>
#include <set>

namespace mvdb {
namespace {

dblp::DblpConfig SmallConfig() {
  dblp::DblpConfig cfg;
  cfg.num_authors = 60;
  cfg.num_prolific_pairs = 2;
  return cfg;
}

TEST(DblpTest, GeneratesAllTables) {
  dblp::DblpStats stats;
  auto mvdb = dblp::BuildDblpMvdb(SmallConfig(), &stats);
  ASSERT_TRUE(mvdb.ok()) << mvdb.status().ToString();
  EXPECT_EQ(stats.authors, 60u);
  EXPECT_EQ(stats.first_pub, 60u);
  EXPECT_GT(stats.pubs, 0u);
  EXPECT_GT(stats.wrote, stats.pubs);  // multi-author papers exist
  // Student table: 7 possible years per author.
  EXPECT_EQ(stats.student, 60u * 7u);
  EXPECT_GT(stats.advisor, 0u);
  for (const char* name :
       {"Author", "Wrote", "Pub", "HomePage", "FirstPub", "DBLPAffiliation",
        "Student", "Advisor", "Affiliation"}) {
    EXPECT_NE((*mvdb)->db().Find(name), nullptr) << name;
  }
  EXPECT_EQ((*mvdb)->views().size(), 3u);
}

TEST(DblpTest, Deterministic) {
  dblp::DblpStats s1, s2;
  auto a = dblp::BuildDblpMvdb(SmallConfig(), &s1);
  auto b = dblp::BuildDblpMvdb(SmallConfig(), &s2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(s1.pubs, s2.pubs);
  EXPECT_EQ(s1.advisor, s2.advisor);
  EXPECT_EQ(s1.affiliation, s2.affiliation);
}

TEST(DblpTest, ScalesWithAuthors) {
  dblp::DblpConfig small = SmallConfig();
  dblp::DblpConfig large = SmallConfig();
  large.num_authors = 180;
  dblp::DblpStats s1, s2;
  ASSERT_TRUE(dblp::BuildDblpMvdb(small, &s1).ok());
  ASSERT_TRUE(dblp::BuildDblpMvdb(large, &s2).ok());
  EXPECT_GT(s2.student, 2u * s1.student);
  EXPECT_GT(s2.pubs, 2u * s1.pubs);
}

TEST(DblpTest, TranslationProducesViews) {
  dblp::DblpStats stats;
  auto mvdb = dblp::BuildDblpMvdb(SmallConfig(), &stats);
  ASSERT_TRUE(mvdb.ok());
  ASSERT_TRUE((*mvdb)->Translate().ok());
  dblp::CollectViewStats(**mvdb, &stats);
  EXPECT_GT(stats.v1, 0u);  // advisor/student pairs co-publish
  EXPECT_GT(stats.v2, 0u);  // some students have two advisor candidates
  EXPECT_GT(stats.v3, 0u);  // planted prolific pairs
  // V1 weights are count/2 > 0; V2 weights all 0 (denial).
  const auto& views = (*mvdb)->view_tuples();
  for (const auto& t : views[1]) EXPECT_EQ(t.weight, 0.0);
  for (const auto& t : views[0]) EXPECT_GT(t.weight, 0.0);
}

TEST(DblpTest, AdvisorTuplesSatisfyFig1WeightExpression) {
  // Recompute the Fig. 1 Advisor definition independently from the base
  // tables: every Advisor(a1,a2) tuple must have count(pid) > 2 qualifying
  // co-publications (a1 in the student window, a2 not) and weight
  // exp(.25 * count).
  dblp::DblpStats stats;
  auto mvdb = dblp::BuildDblpMvdb(SmallConfig(), &stats);
  ASSERT_TRUE(mvdb.ok());
  const Database& db = (*mvdb)->db();
  const Table* advisor = db.Find("Advisor");
  const Table* wrote = db.Find("Wrote");
  const Table* pub = db.Find("Pub");
  const Table* first_pub = db.Find("FirstPub");
  auto fp = [&](Value aid) {
    return first_pub->At(first_pub->Probe(0, aid)[0], 1);
  };
  auto in_window = [&](Value aid, Value year) {
    return year >= fp(aid) - 1 && year <= fp(aid) + 5;
  };
  ASSERT_GT(advisor->size(), 0u);
  for (size_t r = 0; r < advisor->size(); ++r) {
    const Value a1 = advisor->At(static_cast<RowId>(r), 0);
    const Value a2 = advisor->At(static_cast<RowId>(r), 1);
    // Count joint publications with a1 a student and a2 not.
    std::set<Value> pids;
    for (RowId w1 : wrote->Probe(0, a1)) {
      const Value pid = wrote->At(w1, 1);
      bool also_a2 = false;
      for (RowId w2 : wrote->Probe(1, pid)) {
        if (wrote->At(w2, 0) == a2) also_a2 = true;
      }
      if (!also_a2) continue;
      const Value year = pub->At(pub->Probe(0, pid)[0], 2);
      if (in_window(a1, year) && !in_window(a2, year)) pids.insert(pid);
    }
    EXPECT_GT(pids.size(), 2u) << "Advisor(" << a1 << "," << a2 << ")";
    EXPECT_NEAR(db.var_weight(advisor->var(static_cast<RowId>(r))),
                std::exp(0.25 * static_cast<double>(pids.size())), 1e-9);
  }
}

TEST(DblpTest, EndToEndQueryStudentsOfAdvisor) {
  dblp::DblpConfig cfg = SmallConfig();
  cfg.include_affiliation = false;  // keep compile time small
  auto mvdb = dblp::BuildDblpMvdb(cfg, nullptr);
  ASSERT_TRUE(mvdb.ok());
  QueryEngine engine(mvdb->get());
  ASSERT_TRUE(engine.Compile().ok());

  // Find an advisor with at least one student.
  const Table* advisor = (*mvdb)->db().Find("Advisor");
  ASSERT_GT(advisor->size(), 0u);
  const Value senior = advisor->At(0, 1);
  Ucq q = dblp::StudentsOfAdvisorQuery(
      mvdb->get(), dblp::AuthorName(static_cast<int>(senior)));
  auto answers = engine.Query(q, Backend::kMvIndexCC);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_GT(answers->size(), 0u);
  for (const auto& a : *answers) {
    EXPECT_GE(a.prob, 0.0);
    EXPECT_LE(a.prob, 1.0);
  }
  // Backends agree on the DBLP workload.
  auto reuse = engine.Query(q, Backend::kObddReuse);
  auto topdown = engine.Query(q, Backend::kMvIndex);
  ASSERT_TRUE(reuse.ok());
  ASSERT_TRUE(topdown.ok());
  ASSERT_EQ(answers->size(), reuse->size());
  for (size_t i = 0; i < answers->size(); ++i) {
    EXPECT_NEAR((*answers)[i].prob, (*reuse)[i].prob, 1e-9);
    EXPECT_NEAR((*answers)[i].prob, (*topdown)[i].prob, 1e-9);
  }
}

TEST(DblpTest, EndToEndAffiliationQuery) {
  auto mvdb = dblp::BuildDblpMvdb(SmallConfig(), nullptr);
  ASSERT_TRUE(mvdb.ok());
  QueryEngine engine(mvdb->get());
  ASSERT_TRUE(engine.Compile().ok());
  const Table* aff = (*mvdb)->db().Find("Affiliation");
  ASSERT_GT(aff->size(), 0u);
  const Value aid = aff->At(0, 0);
  Ucq q = dblp::AffiliationOfAuthorQuery(mvdb->get(),
                                         dblp::AuthorName(static_cast<int>(aid)));
  auto answers = engine.Query(q, Backend::kMvIndexCC);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_GT(answers->size(), 0u);
  for (const auto& a : *answers) {
    EXPECT_GE(a.prob, 0.0);
    EXPECT_LE(a.prob, 1.0);
  }
}

TEST(DblpTest, WSeparatorExists) {
  // The paper: "The MarkoViews have a separator" — aid1 works across V1,
  // V2 and V3 because every probabilistic atom carries it first.
  auto mvdb = dblp::BuildDblpMvdb(SmallConfig(), nullptr);
  ASSERT_TRUE(mvdb.ok());
  ASSERT_TRUE((*mvdb)->Translate().ok());
  const Database& db = (*mvdb)->db();
  auto is_prob = [&db](const std::string& rel) {
    const Table* t = db.Find(rel);
    return t != nullptr && t->probabilistic();
  };
  EXPECT_TRUE(FindSeparator((*mvdb)->W(), is_prob).has_value());
}

}  // namespace
}  // namespace mvdb
