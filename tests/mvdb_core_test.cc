// Tests for the core MVDB model: view materialization, the Definition 5
// translation (NV tables, w0 = (1-w)/w), denial-view simplification, and
// the worked examples of Sections 2.5 and 3.1.

#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "core/mvdb.h"
#include "test_util.h"

namespace mvdb {
namespace {

using testing_util::MustParse;

/// Example 1 / Section 3.1: Tup = {R(a), S(a)} with weights w1, w2, one
/// MarkoView V(x)[w] :- R(x), S(x). Closed forms:
///   Z = 1 + w1 + w2 + w w1 w2;  P(R v S) = (w1 + w2 + w w1 w2) / Z.
struct Example1 {
  std::unique_ptr<Mvdb> mvdb;
  double w1, w2, w;

  explicit Example1(double w1_in, double w2_in, double w_in)
      : w1(w1_in), w2(w2_in), w(w_in) {
    mvdb = std::make_unique<Mvdb>();
    Database& db = mvdb->db();
    MVDB_CHECK(db.CreateTable("R", {"x"}, true).ok());
    MVDB_CHECK(db.CreateTable("S", {"x"}, true).ok());
    db.InsertProbabilistic("R", {1}, w1);
    db.InsertProbabilistic("S", {1}, w2);
    Ucq def = MustParse("V(x) :- R(x), S(x).", &db.dict());
    MVDB_CHECK(mvdb->AddView(MarkoView::Constant("V", std::move(def), w)).ok());
  }

  double Z() const { return 1 + w1 + w2 + w * w1 * w2; }
};

TEST(MvdbTest, Example1Translation) {
  Example1 ex(2.0, 3.0, 0.25);
  ASSERT_TRUE(ex.mvdb->Translate().ok());
  // NV_V table exists, with w0 = (1-w)/w = 3.
  const Table* nv = ex.mvdb->db().Find("NV_V");
  ASSERT_NE(nv, nullptr);
  EXPECT_TRUE(nv->probabilistic());
  ASSERT_EQ(nv->size(), 1u);
  const auto& tuples = ex.mvdb->view_tuples()[0];
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_DOUBLE_EQ(tuples[0].weight, 0.25);
  EXPECT_NE(tuples[0].nv_var, kNoVar);
  EXPECT_NEAR(ex.mvdb->db().var_weight(tuples[0].nv_var), 3.0, 1e-12);
}

TEST(MvdbTest, Example1NegativeTranslatedWeight) {
  Example1 ex(2.0, 3.0, 2.5);  // w > 1 -> w0 = -0.6, p0 = -1.5
  ASSERT_TRUE(ex.mvdb->Translate().ok());
  const auto& tuples = ex.mvdb->view_tuples()[0];
  EXPECT_NEAR(ex.mvdb->db().var_weight(tuples[0].nv_var), -0.6, 1e-12);
  EXPECT_NEAR(ex.mvdb->db().var_prob(tuples[0].nv_var), -1.5, 1e-9);
}

TEST(MvdbTest, Example1ClosedFormAllBackends) {
  for (double w : {0.0, 0.25, 1.0, 2.5, 7.0}) {
    Example1 ex(2.0, 3.0, w);
    QueryEngine engine(ex.mvdb.get());
    ASSERT_TRUE(engine.Compile().ok());
    Ucq q = MustParse("Q :- R(x). Q :- S(x).", &ex.mvdb->db().dict());
    const double expected = (ex.w1 + ex.w2 + w * ex.w1 * ex.w2) / ex.Z();
    for (Backend b : {Backend::kBruteForce, Backend::kObddReuse,
                      Backend::kMvIndex, Backend::kMvIndexCC,
                      Backend::kSafePlan}) {
      auto p = engine.QueryBoolean(q, b);
      ASSERT_TRUE(p.ok()) << "w=" << w << ": " << p.status().ToString();
      EXPECT_NEAR(*p, expected, 1e-9)
          << "w=" << w << " backend=" << static_cast<int>(b);
    }
  }
}

TEST(MvdbTest, Example1ExclusiveAtZero) {
  // w = 0: R(a) and S(a) are exclusive events.
  Example1 ex(1.0, 1.0, 0.0);
  QueryEngine engine(ex.mvdb.get());
  ASSERT_TRUE(engine.Compile().ok());
  Ucq q = MustParse("Q :- R(x), S(x).", &ex.mvdb->db().dict());
  auto p = engine.QueryBoolean(q);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.0, 1e-12);
}

TEST(MvdbTest, Example1IndependentAtOne) {
  // w = 1: tuples behave independently; weight-1 view tuples are skipped
  // entirely (no NV tuple, empty or absent NV table).
  Example1 ex(2.0, 3.0, 1.0);
  ASSERT_TRUE(ex.mvdb->Translate().ok());
  const auto& tuples = ex.mvdb->view_tuples()[0];
  EXPECT_EQ(tuples[0].nv_var, kNoVar);
  QueryEngine engine(ex.mvdb.get());
  ASSERT_TRUE(engine.Compile().ok());
  Ucq q = MustParse("Q :- R(x), S(x).", &ex.mvdb->db().dict());
  auto p = engine.QueryBoolean(q);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, (2.0 / 3.0) * (3.0 / 4.0), 1e-12);
}

TEST(MvdbTest, DenialViewSimplification) {
  // A pure denial view creates no NV table; W is the raw view body.
  Example1 ex(1.0, 1.0, 0.0);
  ASSERT_TRUE(ex.mvdb->Translate().ok());
  EXPECT_EQ(ex.mvdb->db().Find("NV_V"), nullptr);
  ASSERT_EQ(ex.mvdb->W().disjuncts.size(), 1u);
  EXPECT_EQ(ex.mvdb->W().disjuncts[0].atoms.size(), 2u);  // R, S only
}

TEST(MvdbTest, NonDenialViewKeepsNvAtom) {
  Example1 ex(1.0, 1.0, 0.5);
  ASSERT_TRUE(ex.mvdb->Translate().ok());
  ASSERT_EQ(ex.mvdb->W().disjuncts.size(), 1u);
  EXPECT_EQ(ex.mvdb->W().disjuncts[0].atoms[0].relation, "NV_V");
}

TEST(MvdbTest, TranslateIsIdempotentGuard) {
  Example1 ex(1.0, 1.0, 0.5);
  ASSERT_TRUE(ex.mvdb->Translate().ok());
  EXPECT_EQ(ex.mvdb->Translate().code(), StatusCode::kAlreadyExists);
}

TEST(MvdbTest, AddViewAfterTranslateRejected) {
  Example1 ex(1.0, 1.0, 0.5);
  ASSERT_TRUE(ex.mvdb->Translate().ok());
  Ucq def = MustParse("V9(x) :- R(x).", &ex.mvdb->db().dict());
  EXPECT_EQ(ex.mvdb->AddView(MarkoView::Constant("V9", std::move(def), 2.0)).code(),
            StatusCode::kInvalidArgument);
}

TEST(MvdbTest, InfiniteViewWeightRejected) {
  Example1 ex(1.0, 1.0, 0.5);
  // Replace the view with one returning infinity.
  Mvdb mvdb;
  Database& db = mvdb.db();
  ASSERT_TRUE(db.CreateTable("R", {"x"}, true).ok());
  db.InsertProbabilistic("R", {1}, 1.0);
  Ucq def = MustParse("V(x) :- R(x).", &db.dict());
  ASSERT_TRUE(mvdb.AddView(MarkoView("V", std::move(def), -1,
                                     [](std::span<const Value>, int64_t) {
                                       return kCertainWeight;
                                     }))
                  .ok());
  EXPECT_EQ(mvdb.Translate().code(), StatusCode::kInvalidArgument);
}

TEST(MvdbTest, Example2ProjectionFeature) {
  // Example 2: V(x)[w] :- R(x), S(x,y) — the feature of V(a) is
  // exists y. R(a) ^ S(a,y), correlating all tuples in the lineage.
  Mvdb mvdb;
  Database& db = mvdb.db();
  ASSERT_TRUE(db.CreateTable("R", {"x"}, true).ok());
  ASSERT_TRUE(db.CreateTable("S", {"x", "y"}, true).ok());
  db.InsertProbabilistic("R", {1}, 1.0);
  db.InsertProbabilistic("S", {1, 1}, 1.0);
  db.InsertProbabilistic("S", {1, 2}, 1.0);
  Ucq def = MustParse("V(x) :- R(x), S(x,y).", &db.dict());
  ASSERT_TRUE(mvdb.AddView(MarkoView::Constant("V", std::move(def), 4.0)).ok());
  ASSERT_TRUE(mvdb.Translate().ok());
  const auto& tuples = mvdb.view_tuples()[0];
  ASSERT_EQ(tuples.size(), 1u);  // V(1) only
  EXPECT_EQ(tuples[0].feature.size(), 2u);  // R(1)S(1,1) v R(1)S(1,2)
}

TEST(MvdbTest, CountVarWeights) {
  // Weight = count of distinct y per x, like V1's count(pid)/2.
  Mvdb mvdb;
  Database& db = mvdb.db();
  ASSERT_TRUE(db.CreateTable("R", {"x"}, true).ok());
  ASSERT_TRUE(db.CreateTable("S", {"x", "y"}, true).ok());
  db.InsertProbabilistic("R", {1}, 1.0);
  db.InsertProbabilistic("S", {1, 1}, 1.0);
  db.InsertProbabilistic("S", {1, 2}, 1.0);
  db.InsertProbabilistic("S", {1, 3}, 1.0);
  Ucq def = MustParse("V(x) :- R(x), S(x,y).", &db.dict());
  int y_var = -1;
  for (int i = 0; i < def.num_vars(); ++i) {
    if (def.var_names[static_cast<size_t>(i)] == "y") y_var = i;
  }
  ASSERT_TRUE(mvdb.AddView(MarkoView(
                      "V", std::move(def), y_var,
                      [](std::span<const Value>, int64_t count) {
                        return static_cast<double>(count) / 2.0;
                      }))
                  .ok());
  ASSERT_TRUE(mvdb.Translate().ok());
  EXPECT_DOUBLE_EQ(mvdb.view_tuples()[0][0].weight, 1.5);
}

TEST(MvdbTest, ToGroundMlnMatchesDefinition4) {
  Example1 ex(2.0, 3.0, 0.25);
  ASSERT_TRUE(ex.mvdb->Translate().ok());
  auto mln = ex.mvdb->ToGroundMln();
  ASSERT_TRUE(mln.ok());
  EXPECT_EQ(mln->num_vars(), 2u);
  ASSERT_EQ(mln->features().size(), 1u);
  EXPECT_DOUBLE_EQ(mln->features()[0].weight, 0.25);
  EXPECT_NEAR(mln->ExactPartition(), ex.Z(), 1e-12);
}

TEST(MvdbTest, UnsatisfiableHardConstraintsDetected) {
  // A denial view over a *certain* derivation: W is certainly true, so the
  // MVDB has no possible world; the engine must report it rather than
  // divide by zero.
  Mvdb mvdb;
  Database& db = mvdb.db();
  ASSERT_TRUE(db.CreateTable("D", {"x"}, false).ok());
  ASSERT_TRUE(db.CreateTable("R", {"x"}, true).ok());
  db.InsertDeterministic("D", {1});
  db.InsertProbabilistic("R", {1}, 1.0);
  Ucq def = MustParse("V(x) :- D(x).", &db.dict());
  ASSERT_TRUE(mvdb.AddView(MarkoView::Constant("V", std::move(def), 0.0)).ok());
  QueryEngine engine(&mvdb);
  EXPECT_FALSE(engine.Compile().ok());
}

TEST(MvdbTest, BooleanHeadViewRejected) {
  Mvdb mvdb;
  Database& db = mvdb.db();
  ASSERT_TRUE(db.CreateTable("R", {"x"}, true).ok());
  Ucq def = MustParse("V :- R(x).", &db.dict());
  EXPECT_EQ(mvdb.AddView(MarkoView::Constant("V", std::move(def), 2.0)).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mvdb
