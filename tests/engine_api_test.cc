// Tests for the engine's conditional-query and Explain APIs.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "dblp/dblp.h"
#include "prob/brute_force.h"
#include "query/eval.h"
#include "test_util.h"

namespace mvdb {
namespace {

using testing_util::MustParse;

class ConditionalFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    mvdb_ = std::make_unique<Mvdb>();
    Database& db = mvdb_->db();
    ASSERT_TRUE(db.CreateTable("R", {"x"}, true).ok());
    ASSERT_TRUE(db.CreateTable("S", {"x", "y"}, true).ok());
    Rng rng(91);
    for (int x = 1; x <= 3; ++x) {
      db.InsertProbabilistic("R", {x}, 0.5 + rng.Uniform());
      for (int y = 1; y <= 2; ++y) {
        db.InsertProbabilistic("S", {x, y}, 0.5 + rng.Uniform());
      }
    }
    Ucq v = MustParse("V(x) :- R(x), S(x,y).", &db.dict());
    ASSERT_TRUE(mvdb_->AddView(MarkoView::Constant("V", std::move(v), 2.0)).ok());
    engine_ = std::make_unique<QueryEngine>(mvdb_.get());
    ASSERT_TRUE(engine_->Compile().ok());
    mln_ = std::make_unique<GroundMln>(std::move(mvdb_->ToGroundMln()).value());
  }

  double MlnConditional(const Ucq& q1, const Ucq& q2) {
    Lineage l1 = *EvalBoolean(mvdb_->db(), q1);
    const Lineage l2 = *EvalBoolean(mvdb_->db(), q2);
    // P(Q1 ^ Q2) via lineage conjunction: distribute clauses.
    Lineage joint;
    for (size_t i = 0; i < l1.clauses().size(); ++i) {
      for (size_t j = 0; j < l2.clauses().size(); ++j) {
        Clause pos = l1.clauses()[i];
        pos.insert(pos.end(), l2.clauses()[j].begin(), l2.clauses()[j].end());
        joint.AddClause(pos);
      }
    }
    const double pj = *mln_->ExactQueryProb(joint);
    const double p2 = *mln_->ExactQueryProb(l2);
    return pj / p2;
  }

  std::unique_ptr<Mvdb> mvdb_;
  std::unique_ptr<QueryEngine> engine_;
  std::unique_ptr<GroundMln> mln_;
};

TEST_F(ConditionalFixture, MatchesMlnSemantics) {
  Ucq q1 = MustParse("Q :- R(1).", &mvdb_->db().dict());
  Ucq q2 = MustParse("Q :- S(1,y).", &mvdb_->db().dict());
  for (Backend b :
       {Backend::kMvIndex, Backend::kMvIndexCC, Backend::kObddReuse}) {
    auto p = engine_->ConditionalBoolean(q1, q2, b);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    EXPECT_NEAR(*p, MlnConditional(q1, q2), 1e-9) << static_cast<int>(b);
  }
}

TEST_F(ConditionalFixture, ConditioningOnItselfIsOne) {
  Ucq q = MustParse("Q :- R(2).", &mvdb_->db().dict());
  auto p = engine_->ConditionalBoolean(q, q);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 1.0, 1e-12);
}

TEST_F(ConditionalFixture, ImpossibleConditionRejected) {
  Ucq q1 = MustParse("Q :- R(1).", &mvdb_->db().dict());
  Ucq q2 = MustParse("Q :- R(99).", &mvdb_->db().dict());
  EXPECT_EQ(engine_->ConditionalBoolean(q1, q2).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ConditionalFixture, NonBooleanRejected) {
  Ucq q1 = MustParse("Q(x) :- R(x).", &mvdb_->db().dict());
  Ucq q2 = MustParse("Q :- R(1).", &mvdb_->db().dict());
  EXPECT_EQ(engine_->ConditionalBoolean(q1, q2).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ExplainTest, ReportsLineageAndBlockStats) {
  auto mvdb = dblp::BuildDblpMvdb(dblp::DblpConfig{.num_authors = 100}, nullptr);
  ASSERT_TRUE(mvdb.ok());
  QueryEngine engine(mvdb->get());
  ASSERT_TRUE(engine.Compile().ok());
  const Table* advisor = (*mvdb)->db().Find("Advisor");
  ASSERT_GT(advisor->size(), 0u);
  Ucq q = dblp::StudentsOfAdvisorQuery(
      mvdb->get(),
      dblp::AuthorName(static_cast<int>(advisor->At(0, 1))));
  auto ex = engine.Explain(q);
  ASSERT_TRUE(ex.ok());
  EXPECT_GT(ex->num_answers, 0u);
  EXPECT_GT(ex->lineage_vars, 0u);
  EXPECT_FALSE(ex->uses_negation);
  EXPECT_GT(ex->index_blocks, 0u);
  // A name-constant query touches a small fraction of the blocks — the
  // property that makes the MV-index pay off (Sec. 5.4).
  EXPECT_LT(ex->blocks_touched, ex->index_blocks / 2);
  // The DBLP W contains an inequality self-join: not safe.
  EXPECT_FALSE(ex->safe_with_views);
}

TEST(ExplainTest, SafeQueryDetected) {
  Mvdb mvdb;
  Database& db = mvdb.db();
  ASSERT_TRUE(db.CreateTable("R", {"x"}, true).ok());
  ASSERT_TRUE(db.CreateTable("S", {"x"}, true).ok());
  db.InsertProbabilistic("R", {1}, 1.0);
  db.InsertProbabilistic("S", {1}, 1.0);
  Ucq v = MustParse("V(x) :- R(x), S(x).", &db.dict());
  ASSERT_TRUE(mvdb.AddView(MarkoView::Constant("V", std::move(v), 0.5)).ok());
  QueryEngine engine(&mvdb);
  ASSERT_TRUE(engine.Compile().ok());
  Ucq q = MustParse("Q(x) :- R(x).", &db.dict());
  auto ex = engine.Explain(q);
  ASSERT_TRUE(ex.ok());
  EXPECT_TRUE(ex->safe_with_views);
}

}  // namespace
}  // namespace mvdb
