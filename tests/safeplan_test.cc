// Tests for lifted (safe-plan) inference: agreement with brute force on safe
// queries, UNSAFE detection on hard queries.

#include <gtest/gtest.h>

#include "prob/brute_force.h"
#include "query/eval.h"
#include "safeplan/lifted.h"
#include "test_util.h"

namespace mvdb {
namespace {

using testing_util::Fig3Database;
using testing_util::MustParse;

class SafePlanFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    ASSERT_TRUE(db_->CreateTable("R", {"a"}, true).ok());
    ASSERT_TRUE(db_->CreateTable("S", {"a", "b"}, true).ok());
    ASSERT_TRUE(db_->CreateTable("T", {"b"}, true).ok());
    ASSERT_TRUE(db_->CreateTable("D", {"a", "b"}, false).ok());
    Rng rng(31);
    for (int x = 1; x <= 3; ++x) {
      if (rng.Chance(0.9)) db_->InsertProbabilistic("R", {x}, 0.4 + rng.Uniform());
      if (rng.Chance(0.9)) {
        db_->InsertProbabilistic("T", {10 + x}, 0.4 + rng.Uniform());
      }
      for (int y = 1; y <= 3; ++y) {
        if (rng.Chance(0.7)) {
          db_->InsertProbabilistic("S", {x, 10 + y}, 0.4 + rng.Uniform());
        }
        if (rng.Chance(0.5)) db_->InsertDeterministic("D", {x, 10 + y});
      }
    }
    probs_ = db_->VarProbs();
  }

  void ExpectMatchesBruteForce(const std::string& query) {
    Ucq q = MustParse(query, &db_->dict());
    auto lifted = LiftedProb(*db_, q, probs_);
    ASSERT_TRUE(lifted.ok()) << query << ": " << lifted.status().ToString();
    const Lineage lin = *EvalBoolean(*db_, q);
    EXPECT_NEAR(*lifted, BruteForceProb(lin, probs_), 1e-9) << query;
  }

  std::unique_ptr<Database> db_;
  std::vector<double> probs_;
};

TEST_F(SafePlanFixture, GroundAtom) { ExpectMatchesBruteForce("Q :- R(1)."); }

TEST_F(SafePlanFixture, MissingGroundAtomIsZero) {
  Ucq q = MustParse("Q :- R(99).", &db_->dict());
  auto p = LiftedProb(*db_, q, probs_);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 0.0);
}

TEST_F(SafePlanFixture, SingleAtomExistential) {
  ExpectMatchesBruteForce("Q :- R(x).");
  ExpectMatchesBruteForce("Q :- S(x,y).");
}

TEST_F(SafePlanFixture, SafeJoin) {
  ExpectMatchesBruteForce("Q :- R(x), S(x,y).");
}

TEST_F(SafePlanFixture, SafeJoinWithConstant) {
  ExpectMatchesBruteForce("Q :- R(1), S(1,y).");
}

TEST_F(SafePlanFixture, IndependentJoin) {
  ExpectMatchesBruteForce("Q :- R(x), T(z).");
}

TEST_F(SafePlanFixture, IndependentUnion) {
  ExpectMatchesBruteForce("Q :- R(x). Q :- T(z).");
}

TEST_F(SafePlanFixture, H1UnionIsUnsafe) {
  // R(x),S(x,y) v S(u,v),T(v) is the #P-hard H1 query: inclusion-exclusion
  // produces a connected conjunction with no separator.
  Ucq q = MustParse("Q :- R(x), S(x,y). Q :- S(u,v), T(v).", &db_->dict());
  EXPECT_EQ(LiftedProb(*db_, q, probs_).status().code(),
            StatusCode::kUnsafeQuery);
}

TEST_F(SafePlanFixture, UnionWithSharedSymbol) {
  // The two S atoms carry different constants, so they never share tuples:
  // unifiability-aware independence applies.
  ExpectMatchesBruteForce("Q :- S(x,11). Q :- S(x,12).");
}

TEST_F(SafePlanFixture, InequalitySelfJoinUnsupported) {
  // The UCQ dichotomy of [8] excludes inequality predicates; our lifted
  // rules conservatively report UNSAFE (the OBDD backends still evaluate
  // such queries exactly).
  Ucq q = MustParse("Q :- S(x,y1), S(x,y2), y1 != y2.", &db_->dict());
  EXPECT_EQ(LiftedProb(*db_, q, probs_).status().code(),
            StatusCode::kUnsafeQuery);
}

TEST_F(SafePlanFixture, DeterministicAtomsRestrict) {
  ExpectMatchesBruteForce("Q :- R(x), D(x,y).");
  ExpectMatchesBruteForce("Q :- S(x,y), D(x,y).");
}

TEST_F(SafePlanFixture, ComparisonPredicates) {
  ExpectMatchesBruteForce("Q :- S(x,y), y > 11.");
  ExpectMatchesBruteForce("Q :- R(x), x != 2.");
}

TEST_F(SafePlanFixture, H0IsUnsafe) {
  Ucq q = MustParse("Q :- R(x), S(x,y), T(y).", &db_->dict());
  EXPECT_EQ(LiftedProb(*db_, q, probs_).status().code(),
            StatusCode::kUnsafeQuery);
  EXPECT_FALSE(IsSafe(*db_, q));
}

TEST_F(SafePlanFixture, SafeQueriesReportSafe) {
  EXPECT_TRUE(IsSafe(*db_, MustParse("Q :- R(x), S(x,y).", &db_->dict())));
  EXPECT_TRUE(IsSafe(*db_, MustParse("Q :- R(x). Q :- T(z).", &db_->dict())));
}

TEST_F(SafePlanFixture, NonBooleanRejected) {
  Ucq q = MustParse("Q(x) :- R(x).", &db_->dict());
  EXPECT_EQ(LiftedProb(*db_, q, probs_).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SafePlanFixture, NegativeProbabilities) {
  // Safe plans run unchanged on probabilities outside [0,1] (Section 3.3).
  std::vector<double> probs = probs_;
  probs[0] = -1.5;
  Ucq q = MustParse("Q :- R(x), S(x,y).", &db_->dict());
  auto lifted = LiftedProb(*db_, q, probs);
  ASSERT_TRUE(lifted.ok());
  const Lineage lin = *EvalBoolean(*db_, q);
  EXPECT_NEAR(*lifted, BruteForceProb(lin, probs), 1e-9);
}

TEST_F(SafePlanFixture, Fig3SafetyCheck) {
  // The Fig. 2(a)-style query is safe (the paper notes it is a safe query).
  auto db = Fig3Database();
  Ucq q = MustParse("Q :- R(x), S(x,y).", &db->dict());
  EXPECT_TRUE(IsSafe(*db, q));
}

}  // namespace
}  // namespace mvdb
