// Cross-module integration tests: the full pipeline on hand-written MVDBs,
// backend agreement at a scale beyond brute force, and MC-SAT vs the exact
// engine on a real (small) MVDB — the Figures 5-6 comparison in miniature.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "dblp/dblp.h"
#include "mln/mln.h"
#include "query/eval.h"
#include "test_util.h"

namespace mvdb {
namespace {

using testing_util::MustParse;

TEST(IntegrationTest, BackendsAgreeBeyondBruteForceScale) {
  // 40 authors is far beyond 2^n enumeration; backends must still agree
  // with each other (brute force excluded).
  dblp::DblpConfig cfg;
  cfg.num_authors = 120;
  cfg.include_affiliation = true;
  auto mvdb = dblp::BuildDblpMvdb(cfg, nullptr);
  ASSERT_TRUE(mvdb.ok());
  QueryEngine engine(mvdb->get());
  ASSERT_TRUE(engine.Compile().ok());

  const Table* advisor = (*mvdb)->db().Find("Advisor");
  ASSERT_GT(advisor->size(), 3u);
  for (size_t r = 0; r < 3; ++r) {
    const Value senior = advisor->At(static_cast<RowId>(r), 1);
    Ucq q = dblp::StudentsOfAdvisorQuery(
        mvdb->get(), dblp::AuthorName(static_cast<int>(senior)));
    auto cc = engine.Query(q, Backend::kMvIndexCC);
    auto td = engine.Query(q, Backend::kMvIndex);
    auto reuse = engine.Query(q, Backend::kObddReuse);
    ASSERT_TRUE(cc.ok());
    ASSERT_TRUE(td.ok());
    ASSERT_TRUE(reuse.ok());
    ASSERT_EQ(cc->size(), td->size());
    ASSERT_EQ(cc->size(), reuse->size());
    for (size_t i = 0; i < cc->size(); ++i) {
      EXPECT_NEAR((*cc)[i].prob, (*td)[i].prob, 1e-9);
      EXPECT_NEAR((*cc)[i].prob, (*reuse)[i].prob, 1e-9);
    }
  }
}

TEST(IntegrationTest, McSatAgreesWithExactEngine) {
  // The Alchemy-vs-MarkoViews comparison in miniature: MC-SAT sampling over
  // the MLN of Definition 4 approximates the exact Eq. 5 answer.
  Mvdb mvdb;
  Database& db = mvdb.db();
  ASSERT_TRUE(db.CreateTable("R", {"x"}, true).ok());
  ASSERT_TRUE(db.CreateTable("S", {"x", "y"}, true).ok());
  Rng rng(55);
  for (int x = 1; x <= 3; ++x) {
    db.InsertProbabilistic("R", {x}, 0.5 + rng.Uniform());
    for (int y = 1; y <= 2; ++y) {
      db.InsertProbabilistic("S", {x, y}, 0.5 + rng.Uniform());
    }
  }
  Ucq v1 = MustParse("V1(x) :- R(x), S(x,y).", &db.dict());
  ASSERT_TRUE(mvdb.AddView(MarkoView::Constant("V1", std::move(v1), 3.0)).ok());
  Ucq v2 = MustParse("V2(x,y,z) :- S(x,y), S(x,z), y != z.", &db.dict());
  ASSERT_TRUE(mvdb.AddView(MarkoView::Constant("V2", std::move(v2), 0.0)).ok());

  QueryEngine engine(&mvdb);
  ASSERT_TRUE(engine.Compile().ok());
  auto mln = mvdb.ToGroundMln();
  ASSERT_TRUE(mln.ok());
  SamplerOptions opts;
  opts.num_samples = 20000;
  opts.burn_in = 1000;
  McSat sampler(*mln, opts);

  for (const char* qs : {"Q :- R(1), S(1,y).", "Q :- S(2,1)."}) {
    Ucq q = MustParse(qs, &mvdb.db().dict());
    auto exact = engine.QueryBoolean(q);
    ASSERT_TRUE(exact.ok());
    const Lineage lin = *EvalBoolean(mvdb.db(), q);
    auto approx = sampler.EstimateQueryProb(lin);
    ASSERT_TRUE(approx.ok());
    EXPECT_NEAR(*approx, *exact, 0.05) << qs;
  }
}

TEST(IntegrationTest, WLineageSizeGrowsWithData) {
  // Fig. 4's quantity: lineage size of W grows with the aid domain.
  size_t prev = 0;
  for (int n : {40, 80, 160}) {
    dblp::DblpConfig cfg;
    cfg.num_authors = n;
    cfg.include_affiliation = false;
    auto mvdb = dblp::BuildDblpMvdb(cfg, nullptr);
    ASSERT_TRUE(mvdb.ok());
    QueryEngine engine(mvdb->get());
    ASSERT_TRUE(engine.Compile().ok());
    auto w_lin = engine.WLineage();
    ASSERT_TRUE(w_lin.ok());
    const size_t size = (*w_lin)->NumDistinctVars();
    EXPECT_GT(size, prev);
    prev = size;
  }
}

TEST(IntegrationTest, CompileIsIdempotent) {
  auto mvdb = dblp::BuildDblpMvdb(dblp::DblpConfig{.num_authors = 40}, nullptr);
  ASSERT_TRUE(mvdb.ok());
  QueryEngine engine(mvdb->get());
  ASSERT_TRUE(engine.Compile().ok());
  const size_t size = engine.index().size();
  ASSERT_TRUE(engine.Compile().ok());
  EXPECT_EQ(engine.index().size(), size);
}

TEST(IntegrationTest, QueryWithNoAnswersIsEmpty) {
  auto mvdb = dblp::BuildDblpMvdb(dblp::DblpConfig{.num_authors = 40}, nullptr);
  ASSERT_TRUE(mvdb.ok());
  QueryEngine engine(mvdb->get());
  ASSERT_TRUE(engine.Compile().ok());
  Ucq q = dblp::StudentsOfAdvisorQuery(mvdb->get(), "no such author");
  auto answers = engine.Query(q);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->empty());
}

}  // namespace
}  // namespace mvdb
