// Copyright 2026 The MarkoView Authors.
//
// Parity tests for BuildVariableOrder's radix kernel. The DBLP-style
// workloads in the other suites only produce tiny per-bucket slices, which
// the adaptive path routes to std::sort — so none of them ever executes the
// LSD counting-sort kernel. This suite manufactures adversarial buckets that
// are large enough to cross the radix threshold and drive every branch of
// the kernel: mixed arities in one bucket (missing-position / shorter-first
// rule), negative and large-magnitude values (sign-biased byte passes),
// constant positions (varying-mask skip), and duplicate value sequences
// (stability / (rel_rank, row) tie-break). The pin: radix and pure
// comparison sort produce element-wise identical orders at every thread
// count.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "obdd/order.h"
#include "relational/database.h"
#include "util/rng.h"

namespace mvdb {
namespace {

// Component 0 holds relations R(a), S(a,b,c), and T(a,b) with T permuted to
// sort by b first. One hot value (5) owns a bucket of 350+ rows spanning all
// three arities; the b/c positions mix negatives, huge magnitudes, repeats,
// and (for a slice of S) a constant column. Component 1 holds U(a), V(a,b)
// with its own ~130-row bucket so the second component radixes too.
std::unique_ptr<Database> AdversarialDatabase() {
  auto db = std::make_unique<Database>();
  EXPECT_TRUE(db->CreateTable("R", {"a"}, true).ok());
  EXPECT_TRUE(db->CreateTable("S", {"a", "b", "c"}, true).ok());
  EXPECT_TRUE(db->CreateTable("T", {"a", "b"}, true).ok());
  EXPECT_TRUE(db->CreateTable("U", {"a"}, true).ok());
  EXPECT_TRUE(db->CreateTable("V", {"a", "b"}, true).ok());

  Rng rng(0xC0DE5EEDULL);
  auto val = [&rng]() -> Value {
    // Mix small dense values (forcing duplicates), negatives, and values
    // that differ only in high bytes (exercising the upper byte passes).
    switch (rng.Next() % 4) {
      case 0: return static_cast<Value>(rng.Next() % 7);
      case 1: return -static_cast<Value>(rng.Next() % 1000);
      case 2: return static_cast<Value>(rng.Next() % 100) << 40;
      default: return static_cast<Value>(rng.Next() % 100000);
    }
  };

  // Hot bucket (component 0, v0 = 5): shortest prefix first.
  db->InsertProbabilistic("R", {Value{5}}, 1.5);
  for (int i = 0; i < 150; ++i) {
    // T is permuted {1, 0}: b is the bucketing attribute.
    db->InsertProbabilistic("T", {val(), Value{5}}, 0.7);
  }
  for (int i = 0; i < 200; ++i) {
    // A slice of S with constant b (varying mask == 0 at that position).
    const Value b = (i < 60) ? Value{-42} : val();
    db->InsertProbabilistic("S", {Value{5}, b, val()}, 0.4);
    if (i % 17 == 0) {
      // Exact duplicate sequences: order falls back to insertion rank.
      db->InsertProbabilistic("S", {Value{5}, b, Value{9}}, 0.4);
      db->InsertProbabilistic("S", {Value{5}, b, Value{9}}, 0.6);
    }
  }
  // Cold buckets below the radix threshold, interleaved value ranges.
  for (int a = -3; a <= 3; ++a) {
    if (a == 0) continue;
    db->InsertProbabilistic("R", {Value{a * 11}}, 1.0);
    for (int j = 0; j < 5; ++j) {
      db->InsertProbabilistic("S", {Value{a * 11}, val(), val()}, 0.3);
      db->InsertProbabilistic("T", {val(), Value{a * 11}}, 0.3);
    }
  }

  // Component 1: one bucket just past the threshold plus a tiny one.
  db->InsertProbabilistic("U", {Value{-9}}, 0.9);
  for (int i = 0; i < 130; ++i) {
    db->InsertProbabilistic("V", {Value{-9}, val()}, 0.5);
  }
  for (int i = 0; i < 4; ++i) {
    db->InsertProbabilistic("V", {Value{77}, val()}, 0.5);
  }
  return db;
}

OrderSpec AdversarialSpec() {
  OrderSpec spec;
  spec.pi["T"] = {1, 0};
  spec.component_rank["R"] = 0;
  spec.component_rank["S"] = 0;
  spec.component_rank["T"] = 0;
  spec.component_rank["U"] = 1;
  spec.component_rank["V"] = 1;
  return spec;
}

TEST(OrderRadixTest, RadixMatchesComparisonSortOnAdversarialBuckets) {
  auto db = AdversarialDatabase();
  const OrderSpec spec = AdversarialSpec();

  const std::vector<VarId> reference =
      BuildVariableOrder(*db, spec, /*num_threads=*/1,
                         /*use_radix_sort=*/false);
  ASSERT_FALSE(reference.empty());

  // Sanity: the reference is a permutation of all probabilistic variables.
  std::vector<char> seen(reference.size(), 0);
  for (VarId v : reference) {
    ASSERT_GE(v, 0);
    ASSERT_LT(static_cast<size_t>(v), reference.size());
    ASSERT_FALSE(seen[static_cast<size_t>(v)]) << "duplicate var " << v;
    seen[static_cast<size_t>(v)] = 1;
  }

  for (int threads : {1, 2, 8, 0}) {
    for (bool radix : {false, true}) {
      const std::vector<VarId> order =
          BuildVariableOrder(*db, spec, threads, radix);
      ASSERT_EQ(order.size(), reference.size())
          << "threads=" << threads << " radix=" << radix;
      for (size_t i = 0; i < order.size(); ++i) {
        ASSERT_EQ(order[i], reference[i])
            << "divergence at level " << i << " threads=" << threads
            << " radix=" << radix;
      }
    }
  }
}

// The Fig. 3 ordering semantics (group by first permuted value, shorter
// prefix first on ties) must hold through the radix path too; spot-check the
// hot bucket's head: R(5) precedes every arity-2 and arity-3 tuple with the
// same leading value.
TEST(OrderRadixTest, ShorterPrefixFirstInsideRadixedBucket) {
  auto db = AdversarialDatabase();
  const OrderSpec spec = AdversarialSpec();
  const std::vector<VarId> order =
      BuildVariableOrder(*db, spec, /*num_threads=*/1, /*use_radix_sort=*/true);

  // R(5) is the first inserted variable (VarId 0) and owns the shortest key
  // in the hot bucket; negative R values (-33, -22, -11) bucket before it.
  size_t pos_r5 = order.size();
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == 0) {
      pos_r5 = i;
      break;
    }
  }
  ASSERT_LT(pos_r5, order.size());
  // Everything after R(5) until the next bucket shares v0 = 5, and the very
  // next variables must exist (the 350-row hot bucket follows).
  EXPECT_LT(pos_r5 + 300, order.size());
}

}  // namespace
}  // namespace mvdb
