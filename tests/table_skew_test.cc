// Parity test for the hardened (bounded-probe, two-pass counting) column
// index build against the legacy build path, on adversarially skewed key
// distributions: a hot key owning 50% of all rows, long sorted runs (the
// run-cache path), uniform random keys, and an all-distinct column. The
// probe results are the contract — Probe() spans and DistinctCount() must
// be identical on both paths for every resident and absent key.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "relational/table.h"
#include "relational/types.h"
#include "test_util.h"

namespace mvdb {
namespace {

std::vector<RowId> ToVec(std::span<const RowId> s) {
  return std::vector<RowId>(s.begin(), s.end());
}

/// Probes every value in `probes` on every column under the fast build,
/// then flips the table to the legacy build (which drops the indexes) and
/// verifies the identical spans and distinct counts.
void ExpectIndexParity(Table* t, const std::vector<Value>& probes) {
  const size_t arity = t->arity();
  t->set_use_fast_index_build(true);
  std::vector<std::vector<std::vector<RowId>>> fast(arity);
  std::vector<size_t> fast_distinct(arity);
  for (size_t col = 0; col < arity; ++col) {
    fast_distinct[col] = t->DistinctCount(col);
    for (const Value v : probes) fast[col].push_back(ToVec(t->Probe(col, v)));
  }
  t->set_use_fast_index_build(false);
  for (size_t col = 0; col < arity; ++col) {
    EXPECT_EQ(t->DistinctCount(col), fast_distinct[col]) << "col " << col;
    for (size_t i = 0; i < probes.size(); ++i) {
      EXPECT_EQ(ToVec(t->Probe(col, probes[i])), fast[col][i])
          << "col " << col << " value " << probes[i];
    }
  }
  t->set_use_fast_index_build(true);
}

TEST(TableSkewTest, HotKeyOwningHalfTheRows) {
  // Column 0: one hot key = 50% of rows, the rest spread over a small
  // domain (heavy duplicate clusters). Column 1: sorted run of the row id
  // (the run-cache path degenerates to all-distinct). Column 2: uniform
  // random over a big domain.
  constexpr size_t kRows = 20000;
  constexpr Value kHot = 424242;
  Table t("Skew", {"hot", "run", "rand"}, /*probabilistic=*/false);
  std::mt19937_64 rng(0xD15EA5Eu);
  for (size_t r = 0; r < kRows; ++r) {
    const Value hot = (r % 2 == 0) ? kHot : static_cast<Value>(rng() % 97);
    const Value run = static_cast<Value>(r / 8);  // sorted, 8-row runs
    const Value rnd = static_cast<Value>(rng() % 1000000);
    const Value row[] = {hot, run, rnd};
    t.AppendRow(row, kCertainWeight, kNoVar);
  }
  std::vector<Value> probes = {kHot, 0, 1, 96, 97, -1, 1000001};
  for (size_t i = 0; i < 64; ++i) {
    probes.push_back(static_cast<Value>(rng() % 1000000));  // mostly absent
    probes.push_back(static_cast<Value>(i * 331));
  }
  ExpectIndexParity(&t, probes);

  // The hot key really is half the table, and probes on it see every
  // even row in ascending order.
  const auto hot_rows = t.Probe(0, kHot);
  ASSERT_EQ(hot_rows.size(), kRows / 2);
  for (size_t i = 0; i < hot_rows.size(); ++i) {
    EXPECT_EQ(hot_rows[i], static_cast<RowId>(2 * i));
  }
}

TEST(TableSkewTest, AllDistinctAndAllEqualExtremes) {
  constexpr size_t kRows = 5000;
  Table t("Extreme", {"distinct", "constant"}, /*probabilistic=*/false);
  for (size_t r = 0; r < kRows; ++r) {
    // Strided distinct values so home slots scatter, plus one constant
    // column (a single 5000-row cluster — the maximal hot key).
    const Value row[] = {static_cast<Value>(r * 7919), Value{7}};
    t.AppendRow(row, kCertainWeight, kNoVar);
  }
  std::vector<Value> probes = {7, 0, 7919, -7919,
                               static_cast<Value>((kRows - 1) * 7919)};
  for (size_t i = 0; i < 50; ++i) {
    probes.push_back(static_cast<Value>(i * 7919));
    probes.push_back(static_cast<Value>(i * 7919 + 1));  // absent neighbors
  }
  ExpectIndexParity(&t, probes);
  EXPECT_EQ(t.DistinctCount(0), kRows);
  EXPECT_EQ(t.DistinctCount(1), 1u);
  EXPECT_EQ(t.Probe(1, 7).size(), kRows);
}

TEST(TableSkewTest, AdversarialClusterAroundOneHomeSlot) {
  // Values chosen as k * capacity-ish strides collide into long probe
  // chains on power-of-two tables; with enough of them the fast build's
  // bounded-probe guarantee has to grow the table rather than scan
  // unboundedly. Parity (including absent keys, which exercise the
  // max_probe early-out) must survive the growth path.
  constexpr size_t kRows = 4096;
  Table t("Cluster", {"key"}, /*probabilistic=*/false);
  for (size_t r = 0; r < kRows; ++r) {
    // 50% hot key, 50% values in a dense band (dense bands share nearby
    // home slots at every power-of-two mask).
    const Value row[] = {r % 2 == 0 ? Value{1} : static_cast<Value>(r)};
    t.AppendRow(row, kCertainWeight, kNoVar);
  }
  std::vector<Value> probes;
  for (Value v = -8; v < static_cast<Value>(kRows) + 8; ++v) {
    probes.push_back(v);
  }
  ExpectIndexParity(&t, probes);
}

}  // namespace
}  // namespace mvdb
