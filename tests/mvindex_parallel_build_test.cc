// Determinism of the sharded offline pipeline: for any thread count, the
// MV-index build must be *bit-identical* to the serial build — same block
// keys and level ranges, same extended-range block probabilities, the same
// stitched flat layout node for node, the same P0(NOT W), and the same
// per-query intersect numerators. Soundness rests on the blocks being
// variable-disjoint (Section 4) and on every shard manager sharing the one
// immutable VarOrder; these tests are the executable form of that argument.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/engine.h"
#include "dblp/dblp.h"
#include "mvindex/mv_index.h"
#include "obdd/order.h"
#include "query/eval.h"
#include "test_util.h"

namespace mvdb {
namespace {

using testing_util::MustParse;
using testing_util::RandomMvdb;
using testing_util::RandomMvdbSpec;

/// Asserts the two compiled indexes are identical: block metadata, flat
/// topology, annotations, and overall probability. Everything is compared
/// exactly (ScaledDouble operator== is bitwise on the normalized form).
void ExpectIdenticalIndexes(const MvIndex& a, const MvIndex& b) {
  ASSERT_EQ(a.blocks().size(), b.blocks().size());
  for (size_t i = 0; i < a.blocks().size(); ++i) {
    const MvBlock& ba = a.blocks()[i];
    const MvBlock& bb = b.blocks()[i];
    EXPECT_EQ(ba.key, bb.key) << "block " << i;
    EXPECT_EQ(ba.chain_root, bb.chain_root) << "block " << i;
    EXPECT_EQ(ba.first_level, bb.first_level) << "block " << i;
    EXPECT_EQ(ba.last_level, bb.last_level) << "block " << i;
    EXPECT_TRUE(ba.prob == bb.prob) << "block " << i << ": "
        << ba.prob.ToString() << " vs " << bb.prob.ToString();
  }
  ASSERT_EQ(a.flat().size(), b.flat().size());
  EXPECT_EQ(a.flat().root(), b.flat().root());
  for (FlatId u = 0; u < static_cast<FlatId>(a.flat().size()); ++u) {
    ASSERT_EQ(a.flat().level(u), b.flat().level(u)) << "node " << u;
    ASSERT_EQ(a.flat().lo(u), b.flat().lo(u)) << "node " << u;
    ASSERT_EQ(a.flat().hi(u), b.flat().hi(u)) << "node " << u;
    ASSERT_TRUE(a.flat().prob_under_scaled(u) == b.flat().prob_under_scaled(u))
        << "node " << u;
  }
  EXPECT_TRUE(a.ProbNotWScaled() == b.ProbNotWScaled())
      << a.ProbNotWScaled().ToString() << " vs " << b.ProbNotWScaled().ToString();
}

class ParallelBuildParityTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelBuildParityTest, ShardedBuildIsBitIdenticalToSerial) {
  Rng rng(4200 + static_cast<uint64_t>(GetParam()));
  RandomMvdbSpec spec;
  spec.domain = 3 + static_cast<int>(rng.Below(3));
  spec.with_binary_view = rng.Chance(0.7);
  auto mvdb = RandomMvdb(&rng, spec);
  if (mvdb->db().num_vars() == 0) GTEST_SKIP() << "empty random instance";

  // Both engines borrow the same Mvdb: compilation only reads the database
  // after the (idempotent) translation.
  QueryEngine serial(mvdb.get());
  auto st = serial.Compile(CompileOptions{.num_threads = 1});
  ASSERT_TRUE(st.ok()) << st.ToString();
  QueryEngine sharded(mvdb.get());
  st = sharded.Compile(CompileOptions{.num_threads = 4});
  ASSERT_TRUE(st.ok()) << st.ToString();

  ExpectIdenticalIndexes(serial.index(), sharded.index());

  // Per-query numerators: both intersect algorithms must return the exact
  // same extended-range value against either build.
  const char* queries[] = {
      "Q :- R(x).",
      "Q :- S(x,y).",
      "Q :- R(x), S(x,y).",
      "Q :- R(1).",
      "Q :- S(2,y), R(y).",
  };
  for (const char* qs : queries) {
    Ucq q = MustParse(qs, &mvdb->db().dict());
    const Lineage lin = *EvalBoolean(mvdb->db(), q);
    const NodeId b1 = serial.manager().FromLineageSynthesis(lin);
    const NodeId b2 = sharded.manager().FromLineageSynthesis(lin);
    EXPECT_TRUE(serial.index().CCMVIntersectScaled(b1) ==
                sharded.index().CCMVIntersectScaled(b2))
        << qs;
    EXPECT_TRUE(serial.index().MVIntersectScaled(b1) ==
                sharded.index().MVIntersectScaled(b2))
        << qs;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ParallelBuildParityTest,
                         ::testing::Range(0, 15));

TEST(ParallelBuildTest, DblpParityAndBackendAgreement) {
  dblp::DblpConfig cfg;
  cfg.num_authors = 300;
  cfg.include_affiliation = true;
  auto mvdb_serial = dblp::BuildDblpMvdb(cfg, nullptr);
  auto mvdb_sharded = dblp::BuildDblpMvdb(cfg, nullptr);
  ASSERT_TRUE(mvdb_serial.ok());
  ASSERT_TRUE(mvdb_sharded.ok());

  QueryEngine serial(mvdb_serial->get());
  ASSERT_TRUE(serial.Compile(CompileOptions{.num_threads = 1}).ok());
  QueryEngine sharded(mvdb_sharded->get());
  ASSERT_TRUE(
      sharded.Compile(CompileOptions{.num_threads = 4, .reserve_hint = 8192})
          .ok());

  ExpectIdenticalIndexes(serial.index(), sharded.index());
  EXPECT_GT(sharded.index().build_stats().shards, 1);
  EXPECT_EQ(serial.index().build_stats().shards, 1);
  EXPECT_EQ(serial.index().build_stats().flat_nodes,
            sharded.index().build_stats().flat_nodes);

  // Online answers through the sharded build agree with the serial build
  // across backends.
  const Value senior = (*mvdb_serial)->db().Find("Advisor")->At(0, 1);
  const std::string name = dblp::AuthorName(static_cast<int>(senior));
  Ucq q1 = dblp::StudentsOfAdvisorQuery(mvdb_serial->get(), name);
  Ucq q2 = dblp::StudentsOfAdvisorQuery(mvdb_sharded->get(), name);
  for (Backend b : {Backend::kMvIndex, Backend::kMvIndexCC, Backend::kObddReuse}) {
    auto a1 = serial.Query(q1, b);
    auto a2 = sharded.Query(q2, b);
    ASSERT_TRUE(a1.ok());
    ASSERT_TRUE(a2.ok());
    ASSERT_EQ(a1->size(), a2->size());
    for (size_t i = 0; i < a1->size(); ++i) {
      EXPECT_EQ((*a1)[i].head, (*a2)[i].head);
      EXPECT_DOUBLE_EQ((*a1)[i].prob, (*a2)[i].prob) << "answer " << i;
    }
  }
}

TEST(ParallelBuildTest, HardwareThreadsOptionAndOversharding) {
  // num_threads <= 0 resolves to hardware concurrency; more shards than
  // blocks is clamped. Both must still be bit-identical to serial.
  auto mk = [] {
    return dblp::BuildDblpMvdb(dblp::DblpConfig{.num_authors = 120}, nullptr);
  };
  auto serial_db = mk();
  auto hw_db = mk();
  auto over_db = mk();
  QueryEngine serial(serial_db->get());
  ASSERT_TRUE(serial.Compile().ok());  // default options: serial
  QueryEngine hw(hw_db->get());
  ASSERT_TRUE(hw.Compile(CompileOptions{.num_threads = 0}).ok());
  QueryEngine over(over_db->get());
  ASSERT_TRUE(over.Compile(CompileOptions{.num_threads = 1 << 10}).ok());
  ExpectIdenticalIndexes(serial.index(), hw.index());
  ExpectIdenticalIndexes(serial.index(), over.index());
  EXPECT_LE(over.index().build_stats().shards,
            static_cast<int>(over.index().build_stats().block_tasks));
}

TEST(BddManagerHooksTest, ClearOpCachesPreservesHashConsing) {
  Database db;
  ASSERT_TRUE(db.CreateTable("R", {"a"}, true).ok());
  ASSERT_TRUE(db.CreateTable("S", {"a", "b"}, true).ok());
  for (int x = 1; x <= 3; ++x) {
    db.InsertProbabilistic("R", {x}, 1.0);
    db.InsertProbabilistic("S", {x, 10 + x}, 1.0);
  }
  BddManager mgr(BuildDefaultOrder(db));
  mgr.ReserveNodes(64);
  mgr.ReserveCaches(64);
  const NodeId a = mgr.MkVar(0);
  const NodeId b = mgr.MkVar(1);
  const NodeId conj = mgr.And(a, b);
  const NodeId neg = mgr.Not(conj);
  mgr.ClearOpCaches();
  // Memo tables are gone but the unique table is not: recomputing returns
  // the identical hash-consed nodes.
  EXPECT_EQ(mgr.And(a, b), conj);
  EXPECT_EQ(mgr.Not(conj), neg);
}

TEST(VarOrderTest, SharedAcrossManagers) {
  auto db = testing_util::Fig3Database();
  auto order = std::make_shared<const VarOrder>(BuildDefaultOrder(*db));
  BddManager m1(order);
  BddManager m2(order);
  EXPECT_EQ(m1.num_levels(), order->num_levels());
  EXPECT_EQ(m2.num_levels(), order->num_levels());
  // Same formula in either manager yields an isomorphic (here: equal-id,
  // since both managers are fresh) OBDD.
  ConObddBuilder b1(*db, &m1);
  ConObddBuilder b2(*db, &m2);
  Ucq q1 = MustParse("Q :- R(x), S(x,y).", &db->dict());
  const NodeId f1 = std::move(b1.Build(q1)).value();
  const NodeId f2 = std::move(b2.Build(q1)).value();
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(m1.num_created(), m2.num_created());
}

}  // namespace
}  // namespace mvdb
