// The cost-based hash-join/index-nested-loop path (EvalStrategy::kPlanned)
// against the original greedy scan path (kLegacyScan): on any query the two
// must produce the same answer sets, the same canonical lineage per answer,
// and the same distinct-count sets — the join order and probe columns are
// pure execution detail. Randomized conjunctive queries over random
// databases, plus regressions for self-joins, repeated variables within an
// atom, constant-bound atoms, and the sharded parallel evaluation.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "query/eval.h"
#include "relational/database.h"
#include "test_util.h"
#include "util/rng.h"

namespace mvdb {
namespace {

using testing_util::MustParse;

/// Three-relation random database with skewed, overlapping domains so joins
/// have real fan-out: R(x,y), S(y,z), T(z) — some columns low-cardinality
/// (the institute-style trap the legacy planner falls into).
std::unique_ptr<Database> RandomDb(Rng* rng, int scale) {
  auto db = std::make_unique<Database>();
  MVDB_CHECK(db->CreateTable("R", {"x", "y"}, true).ok());
  MVDB_CHECK(db->CreateTable("S", {"y", "z"}, true).ok());
  MVDB_CHECK(db->CreateTable("T", {"z"}, true).ok());
  MVDB_CHECK(db->CreateTable("D", {"x", "z"}, false).ok());
  const int nx = scale, ny = std::max(2, scale / 4), nz = 3;
  for (int i = 0; i < scale * 2; ++i) {
    db->InsertProbabilistic(
        "R", {1 + static_cast<Value>(rng->Below(static_cast<uint64_t>(nx))),
              1 + static_cast<Value>(rng->Below(static_cast<uint64_t>(ny)))},
        0.2 + rng->Uniform());
  }
  for (int i = 0; i < scale; ++i) {
    db->InsertProbabilistic(
        "S", {1 + static_cast<Value>(rng->Below(static_cast<uint64_t>(ny))),
              1 + static_cast<Value>(rng->Below(static_cast<uint64_t>(nz)))},
        0.2 + rng->Uniform());
  }
  for (int z = 1; z <= nz; ++z) {
    if (rng->Chance(0.8)) db->InsertProbabilistic("T", {z}, 0.5);
  }
  for (int i = 0; i < scale; ++i) {
    db->InsertDeterministic(
        "D", {1 + static_cast<Value>(rng->Below(static_cast<uint64_t>(nx))),
              1 + static_cast<Value>(rng->Below(static_cast<uint64_t>(nz)))});
  }
  return db;
}

/// Evaluates `q` under both strategies (and optionally several thread
/// counts for the planned path) and asserts identical canonical output.
void ExpectStrategiesAgree(const Database& db, const Ucq& q,
                           int count_var = -1) {
  EvalOptions legacy;
  legacy.strategy = EvalStrategy::kLegacyScan;
  legacy.count_var = count_var;
  AnswerMap ref;
  ASSERT_TRUE(Eval(db, q, legacy, &ref).ok());

  for (int threads : {1, 4}) {
    EvalOptions planned;
    planned.strategy = EvalStrategy::kPlanned;
    planned.count_var = count_var;
    planned.num_threads = threads;
    AnswerMap got;
    ASSERT_TRUE(Eval(db, q, planned, &got).ok());
    ASSERT_EQ(got.size(), ref.size()) << "threads=" << threads;
    auto it_ref = ref.begin();
    for (auto it = got.begin(); it != got.end(); ++it, ++it_ref) {
      EXPECT_EQ(it->first, it_ref->first);
      EXPECT_EQ(it->second.lineage.clauses(), it_ref->second.lineage.clauses());
      EXPECT_EQ(it->second.lineage.neg_clauses(),
                it_ref->second.lineage.neg_clauses());
      EXPECT_EQ(it->second.count_values, it_ref->second.count_values);
    }
  }
}

TEST(EvalJoinTest, RandomizedConjunctiveQueries) {
  Rng rng(7);
  const std::vector<std::string> queries = {
      "Q(x) :- R(x,y), S(y,z), T(z).",
      "Q(x,z) :- R(x,y), S(y,z).",
      "Q(z) :- T(z), S(y,z), R(x,y).",
      "Q(x) :- R(x,y), S(y,z), not D(x,z).",
      "Q(y) :- S(y,z), T(z), z > 1.",
      "Q(x,y) :- R(x,y), S(y,z), T(z), x != y.",
  };
  for (int round = 0; round < 6; ++round) {
    auto db = RandomDb(&rng, 20 + round * 17);
    for (const std::string& text : queries) {
      SCOPED_TRACE("round " + std::to_string(round) + ": " + text);
      Ucq q = MustParse(text, &db->dict());
      ExpectStrategiesAgree(*db, q, /*count_var=*/round % 2 == 0 ? 1 : -1);
    }
  }
}

TEST(EvalJoinTest, SelfJoinRegression) {
  // The same relation twice with shared and distinct variables — the plan
  // must treat the two atoms as independent index scans over one table.
  Rng rng(42);
  auto db = RandomDb(&rng, 60);
  for (const std::string text : {
           "Q(x1,x2) :- R(x1,y), R(x2,y), x1 < x2.",
           "Q(y) :- S(y,z), S(y,z2), z != z2.",
           "Q(x) :- R(x,y), R(x,y2), S(y,z), S(y2,z).",
       }) {
    SCOPED_TRACE(text);
    Ucq q = MustParse(text, &db->dict());
    ExpectStrategiesAgree(*db, q);
  }
}

TEST(EvalJoinTest, RepeatedVariableWithinAtom) {
  auto db = std::make_unique<Database>();
  ASSERT_TRUE(db->CreateTable("R", {"a", "b"}, true).ok());
  db->InsertProbabilistic("R", {1, 1}, 1.0);
  db->InsertProbabilistic("R", {1, 2}, 1.0);
  db->InsertProbabilistic("R", {3, 3}, 1.0);
  Ucq q = MustParse("Q(x) :- R(x,x).", &db->dict());
  ExpectStrategiesAgree(*db, q);
  AnswerMap answers;
  ASSERT_TRUE(Eval(*db, q, EvalOptions{}, &answers).ok());
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers.begin()->first, std::vector<Value>{1});
}

TEST(EvalJoinTest, ConstantBoundAtomsRegression) {
  // Constants must drive index probes under both strategies — including a
  // constant on a low-selectivity column and a fully grounded atom (the
  // shape every separator-substituted W block query has).
  Rng rng(99);
  auto db = RandomDb(&rng, 80);
  for (const std::string text : {
           "Q(y) :- R(2,y), S(y,z).",
           "Q(x) :- R(x,y), S(y,1).",
           "Q :- R(2,1), S(1,2).",
           "Q(x) :- R(x,y), S(y,2), T(2).",
       }) {
    SCOPED_TRACE(text);
    Ucq q = MustParse(text, &db->dict());
    ExpectStrategiesAgree(*db, q);
  }
}

TEST(EvalJoinTest, NegationOnlyDisjunctEmitsTheEmptyBinding) {
  // A disjunct with no positive atoms (all arguments constant, safe
  // negation trivially satisfied) has exactly one candidate binding — the
  // empty one — which must reach the negated-atom checks under both
  // strategies.
  auto db = std::make_unique<Database>();
  ASSERT_TRUE(db->CreateTable("R", {"a", "b"}, true).ok());
  ASSERT_TRUE(db->CreateTable("D", {"a"}, false).ok());
  const VarId var = db->InsertProbabilistic("R", {1, 1}, 1.0);
  db->InsertDeterministic("D", {5});

  // Negated probabilistic atom on a possible tuple: one answer whose
  // lineage is the single negated literal.
  Ucq q1 = MustParse("Q :- not R(1,1).", &db->dict());
  ExpectStrategiesAgree(*db, q1);
  AnswerMap a1;
  ASSERT_TRUE(Eval(*db, q1, EvalOptions{}, &a1).ok());
  ASSERT_EQ(a1.size(), 1u);
  EXPECT_EQ(a1.begin()->second.lineage.neg_clauses(),
            std::vector<Clause>{Clause{var}});

  // Negated atom on an impossible tuple: the empty clause (true lineage).
  Ucq q2 = MustParse("Q :- not R(7,7).", &db->dict());
  ExpectStrategiesAgree(*db, q2);
  AnswerMap a2;
  ASSERT_TRUE(Eval(*db, q2, EvalOptions{}, &a2).ok());
  ASSERT_EQ(a2.size(), 1u);
  EXPECT_TRUE(a2.begin()->second.lineage.IsTrue());

  // Negated deterministic atom on a present tuple: the binding dies.
  Ucq q3 = MustParse("Q :- not D(5).", &db->dict());
  ExpectStrategiesAgree(*db, q3);
  AnswerMap a3;
  ASSERT_TRUE(Eval(*db, q3, EvalOptions{}, &a3).ok());
  EXPECT_TRUE(a3.empty());
}

TEST(EvalJoinTest, UnionsAndEmptyAnswers) {
  Rng rng(5);
  auto db = RandomDb(&rng, 30);
  Ucq u = MustParse("Q(y) :- R(x,y), S(y,z). Q(y) :- S(y,z), T(z).",
                    &db->dict());
  ExpectStrategiesAgree(*db, u);
  Ucq empty = MustParse("Q(x) :- R(x,y), S(y,z), z > 999.", &db->dict());
  ExpectStrategiesAgree(*db, empty);
}

TEST(EvalJoinTest, PlannedPathPrefersSelectiveProbe) {
  // Sanity check that the planned path is actually exercising the index:
  // a star join whose legacy order explodes through the 3-value z column
  // still returns correct results (small instance; the 1M-author case is
  // covered by the build benchmarks).
  Rng rng(1);
  auto db = RandomDb(&rng, 200);
  Ucq q = MustParse("Q(x1,x2) :- T(z), S(y1,z), S(y2,z), R(x1,y1), R(x2,y2).",
                    &db->dict());
  ExpectStrategiesAgree(*db, q);
}

}  // namespace
}  // namespace mvdb
